"""The traceroute atlas (design question Q1).

A per-source collection of traceroutes from randomly selected
RIPE-Atlas-like vantage points toward the source, refreshed daily. A
reverse traceroute that reaches any hop of an atlas traceroute can be
completed by appending the traceroute's suffix (destination-based
routing, Insight 1.1). The replacement policy — keep traceroutes that
produced intersections, replace the rest with fresh random VPs — is
the "Random++" of Fig. 9b, which converges to near-optimal in about
five daily iterations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net.addr import Address
from repro.net.packet import TracerouteResult
from repro.obs.instrument import NULL
from repro.probing.prober import Prober
from repro.probing.traceroute import paris_traceroute

#: Atlas traceroutes older than this are considered stale (paper:
#: daily refresh keeps stale intersections at 0.7%).
DEFAULT_STALENESS = 86_400.0


@dataclass(frozen=True)
class Intersection:
    """A hit in the atlas: hop *index* of the traceroute from *vp*."""

    vp: Address
    index: int
    timestamp: float


class TracerouteAtlas:
    """Per-source atlas of vantage-point-to-source traceroutes."""

    def __init__(
        self,
        source: Address,
        max_size: int = 1000,
        staleness: float = DEFAULT_STALENESS,
    ) -> None:
        self.source = source
        self.max_size = max_size
        self.staleness = staleness
        #: instrumentation sink; rewired by the engine when enabled
        self.obs = NULL
        self._obs_hits = 0
        self._obs_misses = 0
        self.traceroutes: Dict[Address, TracerouteResult] = {}
        self._index: Dict[Address, List[Tuple[Address, int]]] = {}
        self._useful: Set[Address] = set()

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add(self, trace: TracerouteResult) -> None:
        """Insert (or replace) the traceroute from ``trace.src``."""
        if trace.dst != self.source:
            raise ValueError(
                f"traceroute to {trace.dst} does not target atlas "
                f"source {self.source}"
            )
        previous = self.traceroutes.get(trace.src)
        if previous is not None:
            self._unindex(previous)
        self.traceroutes[trace.src] = trace
        for index, hop in enumerate(trace.hops):
            if hop is None:
                continue
            self._index.setdefault(hop, []).append((trace.src, index))

    def _unindex(self, trace: TracerouteResult) -> None:
        for hop in trace.hops:
            if hop is None:
                continue
            entries = self._index.get(hop)
            if not entries:
                continue
            entries[:] = [e for e in entries if e[0] != trace.src]
            if not entries:
                del self._index[hop]

    def remove(self, vp: Address) -> None:
        trace = self.traceroutes.pop(vp, None)
        if trace is not None:
            self._unindex(trace)
        self._useful.discard(vp)

    def build(
        self,
        prober: Prober,
        candidate_vps: Sequence[Address],
        rng: random.Random,
        size: Optional[int] = None,
    ) -> None:
        """Measure traceroutes from random candidate VPs (Q1)."""
        size = self.max_size if size is None else size
        chosen = list(candidate_vps)
        rng.shuffle(chosen)
        for vp in chosen[:size]:
            trace = paris_traceroute(prober, vp, self.source)
            if trace.responsive_hops():
                self.add(trace)

    def refresh(
        self,
        prober: Prober,
        candidate_vps: Sequence[Address],
        rng: random.Random,
    ) -> int:
        """Daily Random++ refresh (Fig. 9b).

        Re-measures traceroutes that produced intersections since the
        last refresh and replaces the others with fresh random VPs.
        Returns the number of replaced traceroutes.
        """
        keep = set(self._useful)
        drop = [vp for vp in self.traceroutes if vp not in keep]
        unused_pool = [
            vp
            for vp in candidate_vps
            if vp not in self.traceroutes and vp not in keep
        ]
        rng.shuffle(unused_pool)
        replaced = 0
        for vp in drop:
            self.remove(vp)
        for vp in sorted(keep):
            trace = paris_traceroute(prober, vp, self.source)
            if trace.responsive_hops():
                self.add(trace)
        want = self.max_size - len(self.traceroutes)
        for vp in unused_pool[:want]:
            trace = paris_traceroute(prober, vp, self.source)
            if trace.responsive_hops():
                self.add(trace)
                replaced += 1
        self._useful.clear()
        return replaced

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _on_obs_attached(self, instrumentation) -> None:
        if instrumentation.enabled:
            instrumentation.register_collect_source(self._obs_collect)

    def _obs_collect(self) -> Dict:
        key = ("atlas", "traceroute")
        return {
            ("atlas_lookups_total", (key, ("outcome", "hit"))): float(
                self._obs_hits
            ),
            ("atlas_lookups_total", (key, ("outcome", "miss"))): float(
                self._obs_misses
            ),
        }

    def lookup(self, addr: Address) -> Optional[Intersection]:
        """Find the freshest traceroute containing *addr*."""
        entries = self._index.get(addr)
        if not entries:
            self._obs_misses += 1
            return None
        self._obs_hits += 1
        best: Optional[Intersection] = None
        for vp, index in entries:
            trace = self.traceroutes[vp]
            candidate = Intersection(vp, index, trace.timestamp)
            if best is None or candidate.timestamp > best.timestamp:
                best = candidate
        return best

    def suffix(self, hit: Intersection) -> List[Address]:
        """Hops from just after the intersection to the source."""
        trace = self.traceroutes[hit.vp]
        return [
            hop for hop in trace.hops[hit.index + 1:] if hop is not None
        ]

    def mark_useful(self, vp: Address) -> None:
        """Record that *vp*'s traceroute served an intersection."""
        if vp in self.traceroutes:
            self._useful.add(vp)

    def is_stale(self, hit: Intersection, now: float) -> bool:
        return now - hit.timestamp > self.staleness

    def all_hops(self) -> List[Address]:
        """Every distinct responsive hop address in the atlas."""
        return list(self._index)

    def hop_positions(self, addr: Address) -> List[Tuple[Address, int]]:
        return list(self._index.get(addr, []))

    def __len__(self) -> int:
        return len(self.traceroutes)

    def __contains__(self, addr: Address) -> bool:
        return addr in self._index
