"""The RR atlas: a-priori intersection aliases (design question Q2).

Routers show traceroute one address (the ingress) and record route
another (the egress toward the source), so a reverse traceroute's
RR-discovered hops rarely string-match the traceroute atlas. Instead of
runtime alias resolution — slow, incomplete — revtr 2.0 probes every
atlas traceroute hop with a record-route ping toward the source
*offline*: the reply's reverse-path stamps are exactly the addresses a
later reverse traceroute will see, so each one is registered as an
intersection alias pointing into the atlas (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.addr import Address, same_slash30, same_slash31, slash30_peer
from repro.core.atlas import Intersection, TracerouteAtlas
from repro.obs.instrument import NULL
from repro.probing.budget import ProbeCounter
from repro.probing.prober import LOSS_TIMEOUT, Prober, RRPingResult


@dataclass
class RRBuildStats:
    """Accounting for one :meth:`RRAtlas.build` call.

    A *unit* is one probe ladder — direct RR ping from the source,
    then up to ``max_spoofers_per_hop`` spoofed retries — for one
    target address.  With dedup on there is one unit per distinct hop
    address; without, one per hop occurrence.  ``unit_costs`` holds
    each unit's virtual-clock cost in probing order, which is what the
    pipeline's shard lanes re-schedule.
    """

    occurrences: int = 0
    units: int = 0
    probes_sent: int = 0
    probes_deduped: int = 0
    unit_costs: List[float] = field(default_factory=list)

    @property
    def virtual_seconds(self) -> float:
        return sum(self.unit_costs)


class RRAtlas:
    """Maps RR-visible addresses to atlas traceroute positions."""

    def __init__(self, atlas: TracerouteAtlas) -> None:
        self.atlas = atlas
        #: instrumentation sink; rewired by the engine when enabled
        self.obs = NULL
        self._obs_hits = 0
        self._obs_misses = 0
        self._obs_stale = 0
        #: RR-visible address -> (vp, traceroute index) it intersects at
        self._mapping: Dict[Address, Tuple[Address, int]] = {}
        self.probes_sent = 0
        #: probes *not* sent because a hop address recurring across
        #: atlas traceroutes was already probed this build
        self.probes_deduped = 0
        #: accounting for the most recent :meth:`build`
        self.last_build: RRBuildStats = RRBuildStats()

    # ------------------------------------------------------------------
    # Offline construction
    # ------------------------------------------------------------------

    def build(
        self,
        prober: Prober,
        spoofer_vps: Sequence[Address],
        max_spoofers_per_hop: int = 2,
        *,
        dedup: bool = True,
        batched: bool = True,
    ) -> None:
        """Probe every atlas hop with RR toward the source.

        Tries a direct RR ping from the source first; if the hop is out
        of range, retries spoofed as the source from a few VPs (Fig. 3's
        "from s or spoofing as s").

        ``dedup`` probes each distinct hop address once per build even
        when it occurs in many VPs' traceroutes (the saved probes are
        tallied in :attr:`probes_deduped`); ``batched`` drives whole
        retry rounds through :meth:`Prober.rr_ping_batch` instead of
        one :meth:`Prober.rr_ping` at a time.  Forwarding outcomes are
        pure functions of each probe, so every combination produces an
        identical ``_mapping``; dedup additionally reduces probes sent
        (and therefore virtual probing time), batching only wall-clock
        time.
        """
        source = self.atlas.source
        occurrences: List[
            Tuple[Address, int, Address, Sequence[Optional[Address]]]
        ] = []
        for vp, trace in self.atlas.traceroutes.items():
            for index, hop in enumerate(trace.hops):
                if hop is None or hop == source:
                    continue
                occurrences.append((vp, index, hop, trace.hops))
        spoofers = list(spoofer_vps[:max_spoofers_per_hop])
        if dedup:
            targets = list(
                dict.fromkeys(occ[2] for occ in occurrences)
            )
        else:
            targets = [occ[2] for occ in occurrences]
        probe = (
            self._probe_ladders_batched
            if batched
            else self._probe_ladders_serial
        )
        ladders = probe(prober, source, targets, spoofers)

        stats = RRBuildStats(occurrences=len(occurrences))
        stats.units = len(ladders)
        for _, probes, cost in ladders:
            stats.probes_sent += probes
            stats.unit_costs.append(cost)
        if dedup:
            by_hop = {
                hop: ladder for hop, ladder in zip(targets, ladders)
            }
            seen: set = set()
            for _, _, hop, _ in occurrences:
                if hop in seen:
                    stats.probes_deduped += by_hop[hop][1]
                else:
                    seen.add(hop)
            results = [by_hop[occ[2]][0] for occ in occurrences]
        else:
            results = [ladder[0] for ladder in ladders]
        self.probes_sent += stats.probes_sent
        self.probes_deduped += stats.probes_deduped
        self.last_build = stats

        for (vp, index, hop, trace_hops), result in zip(
            occurrences, results
        ):
            if result is not None and self._usable(result):
                self._register(result, vp, index, trace_hops)

    def _probe_ladders_serial(
        self,
        prober: Prober,
        source: Address,
        targets: Sequence[Address],
        spoofers: Sequence[Address],
    ) -> List[Tuple[Optional[RRPingResult], int, float]]:
        """One full retry ladder at a time (the historical loop)."""
        ladders = []
        for hop in targets:
            result = prober.rr_ping(source, hop)
            probes = 1
            cost = result.rtt if result.responded else LOSS_TIMEOUT
            if not self._usable(result):
                for spoofer in spoofers:
                    result = prober.rr_ping(
                        spoofer, hop, spoof_as=source
                    )
                    probes += 1
                    cost += (
                        result.rtt if result.responded else LOSS_TIMEOUT
                    )
                    if self._usable(result):
                        break
            ladders.append((result, probes, cost))
        return ladders

    def _probe_ladders_batched(
        self,
        prober: Prober,
        source: Address,
        targets: Sequence[Address],
        spoofers: Sequence[Address],
    ) -> List[Tuple[Optional[RRPingResult], int, float]]:
        """Retry rounds through the batch walker.

        Round 0 probes every target directly from the source; round
        ``k`` retries the still-unusable remainder spoofed as the
        source from the k-th spoofer — the same ladder each target
        climbs serially, probed a round at a time so destination
        resolution is shared and the Python-level per-probe overhead
        amortised.
        """
        states: List[List] = [[None, 0, 0.0] for _ in targets]
        pending = list(range(len(targets)))
        for vp in [None] + list(spoofers):
            if not pending:
                break
            if vp is None:
                items = [(source, targets[i], None) for i in pending]
            else:
                items = [(vp, targets[i], source) for i in pending]
            results = prober.rr_ping_batch(items)
            still = []
            for i, result in zip(pending, results):
                state = states[i]
                state[0] = result
                state[1] += 1
                state[2] += (
                    result.rtt if result.responded else LOSS_TIMEOUT
                )
                if not self._usable(result):
                    still.append(i)
            pending = still
        return [tuple(state) for state in states]

    @staticmethod
    def _usable(result: RRPingResult) -> bool:
        return result.responded and result.destination_stamp_index() is not None

    def _register(
        self,
        result: RRPingResult,
        vp: Address,
        hop_index: int,
        trace_hops: Sequence[Optional[Address]],
    ) -> None:
        """Register the reply's reverse-path stamps as aliases.

        Attribution must never be too shallow: intersecting at an
        earlier position than the alias's real router would prepend
        hops the reverse path never visits (a wrong path), whereas a
        too-deep attribution only shortens the copied suffix. So an
        alias is registered only when its position is *certain*:

        * the probed hop's own stamp (the reply's first entry) belongs
          to the probed position;
        * other revealed addresses are registered only when they align
          with a specific later traceroute hop (same address, /31, or
          the two ends of a /30) — non-stamping routers make purely
          positional attribution unsound.
        """
        stamp_index = result.destination_stamp_index()
        assert stamp_index is not None
        revealed = [result.slots[stamp_index]] + result.reverse_hops()
        last_index = len(trace_hops) - 1
        for offset, addr in enumerate(revealed):
            position: Optional[int] = hop_index if offset == 0 else None
            for later in range(last_index, hop_index, -1):
                hop = trace_hops[later]
                if hop is None:
                    continue
                if (
                    addr == hop
                    or same_slash31(addr, hop)
                    or (
                        same_slash30(addr, hop)
                        and slash30_peer(addr) == hop
                    )
                ):
                    position = later
                    break
            if position is None:
                continue
            existing = self._mapping.get(addr)
            if existing is None or position > existing[1]:
                self._mapping[addr] = (vp, position)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _on_obs_attached(self, instrumentation) -> None:
        if instrumentation.enabled:
            instrumentation.register_collect_source(self._obs_collect)

    def _obs_collect(self) -> Dict:
        key = ("atlas", "rr")
        return {
            ("atlas_lookups_total", (key, ("outcome", "hit"))): float(
                self._obs_hits
            ),
            ("atlas_lookups_total", (key, ("outcome", "miss"))): float(
                self._obs_misses
            ),
            ("atlas_lookups_total", (key, ("outcome", "stale"))): float(
                self._obs_stale
            ),
            ("atlas_probes_deduped_total", (key,)): float(
                self.probes_deduped
            ),
        }

    def lookup(self, addr: Address) -> Optional[Intersection]:
        """Intersection for an RR-visible alias, if registered."""
        entry = self._mapping.get(addr)
        if entry is None:
            self._obs_misses += 1
            return None
        vp, index = entry
        trace = self.atlas.traceroutes.get(vp)
        if trace is None:
            # The alias points into a traceroute the atlas has since
            # pruned (Random++ replacement): no usable intersection, so
            # it must not count as a hit.
            self._obs_stale += 1
            return None
        self._obs_hits += 1
        return Intersection(vp, index, trace.timestamp)

    def known_aliases(self) -> List[Address]:
        return list(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, addr: Address) -> bool:
        return addr in self._mapping
