"""The RR atlas: a-priori intersection aliases (design question Q2).

Routers show traceroute one address (the ingress) and record route
another (the egress toward the source), so a reverse traceroute's
RR-discovered hops rarely string-match the traceroute atlas. Instead of
runtime alias resolution — slow, incomplete — revtr 2.0 probes every
atlas traceroute hop with a record-route ping toward the source
*offline*: the reply's reverse-path stamps are exactly the addresses a
later reverse traceroute will see, so each one is registered as an
intersection alias pointing into the atlas (Fig. 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.addr import Address, same_slash30, same_slash31, slash30_peer
from repro.core.atlas import Intersection, TracerouteAtlas
from repro.obs.instrument import NULL
from repro.probing.budget import ProbeCounter
from repro.probing.prober import Prober, RRPingResult


class RRAtlas:
    """Maps RR-visible addresses to atlas traceroute positions."""

    def __init__(self, atlas: TracerouteAtlas) -> None:
        self.atlas = atlas
        #: instrumentation sink; rewired by the engine when enabled
        self.obs = NULL
        self._obs_hits = 0
        self._obs_misses = 0
        #: RR-visible address -> (vp, traceroute index) it intersects at
        self._mapping: Dict[Address, Tuple[Address, int]] = {}
        self.probes_sent = 0

    # ------------------------------------------------------------------
    # Offline construction
    # ------------------------------------------------------------------

    def build(
        self,
        prober: Prober,
        spoofer_vps: Sequence[Address],
        max_spoofers_per_hop: int = 2,
    ) -> None:
        """Probe every atlas hop with RR toward the source.

        Tries a direct RR ping from the source first; if the hop is out
        of range, retries spoofed as the source from a few VPs (Fig. 3's
        "from s or spoofing as s").
        """
        source = self.atlas.source
        for vp, trace in self.atlas.traceroutes.items():
            for index, hop in enumerate(trace.hops):
                if hop is None or hop == source:
                    continue
                result = prober.rr_ping(source, hop)
                self.probes_sent += 1
                if not self._usable(result):
                    for spoofer in spoofer_vps[:max_spoofers_per_hop]:
                        result = prober.rr_ping(
                            spoofer, hop, spoof_as=source
                        )
                        self.probes_sent += 1
                        if self._usable(result):
                            break
                if self._usable(result):
                    self._register(result, vp, index, trace.hops)

    @staticmethod
    def _usable(result: RRPingResult) -> bool:
        return result.responded and result.destination_stamp_index() is not None

    def _register(
        self,
        result: RRPingResult,
        vp: Address,
        hop_index: int,
        trace_hops: Sequence[Optional[Address]],
    ) -> None:
        """Register the reply's reverse-path stamps as aliases.

        Attribution must never be too shallow: intersecting at an
        earlier position than the alias's real router would prepend
        hops the reverse path never visits (a wrong path), whereas a
        too-deep attribution only shortens the copied suffix. So an
        alias is registered only when its position is *certain*:

        * the probed hop's own stamp (the reply's first entry) belongs
          to the probed position;
        * other revealed addresses are registered only when they align
          with a specific later traceroute hop (same address, /31, or
          the two ends of a /30) — non-stamping routers make purely
          positional attribution unsound.
        """
        stamp_index = result.destination_stamp_index()
        assert stamp_index is not None
        revealed = [result.slots[stamp_index]] + result.reverse_hops()
        last_index = len(trace_hops) - 1
        for offset, addr in enumerate(revealed):
            position: Optional[int] = hop_index if offset == 0 else None
            for later in range(last_index, hop_index, -1):
                hop = trace_hops[later]
                if hop is None:
                    continue
                if (
                    addr == hop
                    or same_slash31(addr, hop)
                    or (
                        same_slash30(addr, hop)
                        and slash30_peer(addr) == hop
                    )
                ):
                    position = later
                    break
            if position is None:
                continue
            existing = self._mapping.get(addr)
            if existing is None or position > existing[1]:
                self._mapping[addr] = (vp, position)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _on_obs_attached(self, instrumentation) -> None:
        if instrumentation.enabled:
            instrumentation.register_collect_source(self._obs_collect)

    def _obs_collect(self) -> Dict:
        key = ("atlas", "rr")
        return {
            ("atlas_lookups_total", (key, ("outcome", "hit"))): float(
                self._obs_hits
            ),
            ("atlas_lookups_total", (key, ("outcome", "miss"))): float(
                self._obs_misses
            ),
        }

    def lookup(self, addr: Address) -> Optional[Intersection]:
        """Intersection for an RR-visible alias, if registered."""
        entry = self._mapping.get(addr)
        if entry is None:
            self._obs_misses += 1
            return None
        self._obs_hits += 1
        vp, index = entry
        trace = self.atlas.traceroutes.get(vp)
        if trace is None:
            return None
        return Intersection(vp, index, trace.timestamp)

    def known_aliases(self) -> List[Address]:
        return list(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, addr: Address) -> bool:
        return addr in self._mapping
