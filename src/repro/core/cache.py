"""Measurement cache (Insight 1.4).

Paths are stable enough to reuse measurements for a day: revtr 2.0
caches record-route results and forward traceroutes keyed by
(measurement kind, parameters), with expiry read off the virtual clock.
The cache is a large share of the Table 4 probe savings because reverse
paths toward one source converge, so later reverse traceroutes re-hit
the same (hop, source) measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.obs.instrument import NULL
from repro.sim.clock import VirtualClock

#: Default entry lifetime: one day (paper: daily refresh).
DEFAULT_TTL = 86_400.0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        # Guarded: zero lookups must read as 0.0, not raise.
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Uniform scrape format for the observability layer."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


class MeasurementCache:
    """A TTL cache driven by virtual time."""

    def __init__(
        self,
        clock: VirtualClock,
        ttl: float = DEFAULT_TTL,
        enabled: bool = True,
    ) -> None:
        self.clock = clock
        self.ttl = ttl
        self.enabled = enabled
        self.stats = CacheStats()
        #: instrumentation sink; rewired by the engine when enabled
        self.obs = NULL
        self._entries: Dict[Hashable, Tuple[float, Any]] = {}

    def _on_obs_attached(self, instrumentation) -> None:
        """Mirror :class:`CacheStats` into ``cache_lookups_total``.

        Pull-style: the stats object already tallies every lookup, so
        ``get`` pays nothing extra; an expired lookup counts as both a
        miss (in stats) and an ``expired`` metric outcome.
        """
        if instrumentation.enabled:
            instrumentation.register_collect_source(self._obs_collect)

    def _obs_collect(self) -> Dict:
        stats = self.stats
        return {
            ("cache_lookups_total", (("outcome", "hit"),)): float(
                stats.hits
            ),
            ("cache_lookups_total", (("outcome", "miss"),)): float(
                stats.misses - stats.expirations
            ),
            ("cache_lookups_total", (("outcome", "expired"),)): float(
                stats.expirations
            ),
        }

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value, or None on miss/expiry/disabled."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        stored_at, value = entry
        if self.clock.now() - stored_at > self.ttl:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled:
            return
        self._entries[key] = (self.clock.now(), value)

    def contains_fresh(self, key: Hashable) -> bool:
        entry = self._entries.get(key)
        if entry is None:
            return False
        return self.clock.now() - entry[0] <= self.ttl

    def age(self, key: Hashable) -> Optional[float]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        return self.clock.now() - entry[0]

    def purge_expired(self) -> int:
        """Drop expired entries; returns how many were removed."""
        now = self.clock.now()
        expired = [
            key
            for key, (stored_at, _) in self._entries.items()
            if now - stored_at > self.ttl
        ]
        for key in expired:
            del self._entries[key]
        return len(expired)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
