"""Measurement cache (Insight 1.4).

Paths are stable enough to reuse measurements for a day: revtr 2.0
caches record-route results and forward traceroutes keyed by
(measurement kind, parameters), with expiry read off the virtual clock.
The cache is a large share of the Table 4 probe savings because reverse
paths toward one source converge, so later reverse traceroutes re-hit
the same (hop, source) measurements.

The cache is bounded two ways: entries expire after ``ttl`` (and the
measurement path sweeps them out via :meth:`maybe_purge`), and an
optional ``max_entries`` cap evicts least-recently-used entries so a
long-running service cannot grow the cache without bound.  All
operations take an internal lock so the scheduler's threaded mode can
share one cache across engines.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.obs.instrument import NULL
from repro.sim.clock import VirtualClock

#: Default entry lifetime: one day (paper: daily refresh).
DEFAULT_TTL = 86_400.0

#: Default spacing of opportunistic expired-entry sweeps (virtual
#: seconds); one sweep per simulated hour keeps the dict from
#: accumulating a day's worth of dead entries between measurements.
DEFAULT_PURGE_INTERVAL = 3_600.0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        # Guarded: zero lookups must read as 0.0, not raise.
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Uniform scrape format for the observability layer."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


class MeasurementCache:
    """A TTL + optional-LRU cache driven by virtual time."""

    def __init__(
        self,
        clock: VirtualClock,
        ttl: float = DEFAULT_TTL,
        enabled: bool = True,
        max_entries: Optional[int] = None,
        purge_interval: float = DEFAULT_PURGE_INTERVAL,
        negative_ttl: Optional[float] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.clock = clock
        self.ttl = ttl
        #: Lifetime for entries stored with ``put(..., negative=True)``
        #: (empty / UNRESPONSIVE verdicts).  None keeps the historical
        #: behaviour — negative results linger as long as good ones.
        self.negative_ttl = negative_ttl
        self.enabled = enabled
        self.max_entries = max_entries
        self.purge_interval = purge_interval
        self.stats = CacheStats()
        #: instrumentation sink; rewired by the engine when enabled
        self.obs = NULL
        #: key -> (stored_at, value, effective ttl) — per-entry TTL so
        #: negative results can expire on their own (shorter) schedule.
        self._entries: Dict[Hashable, Tuple[float, Any, float]] = {}
        self._lock = threading.RLock()
        self._last_purge = clock.now()

    def _on_obs_attached(self, instrumentation) -> None:
        """Mirror :class:`CacheStats` into ``cache_lookups_total``.

        Pull-style: the stats object already tallies every lookup, so
        ``get`` pays nothing extra; an expired lookup counts as both a
        miss (in stats) and an ``expired`` metric outcome.  LRU
        evictions ride the same source as ``cache_evictions_total``.
        """
        if instrumentation.enabled:
            instrumentation.register_collect_source(self._obs_collect)

    def _obs_collect(self) -> Dict:
        stats = self.stats
        return {
            ("cache_lookups_total", (("outcome", "hit"),)): float(
                stats.hits
            ),
            ("cache_lookups_total", (("outcome", "miss"),)): float(
                stats.misses - stats.expirations
            ),
            ("cache_lookups_total", (("outcome", "expired"),)): float(
                stats.expirations
            ),
            ("cache_evictions_total", ()): float(stats.evictions),
        }

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value, or None on miss/expiry/disabled."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        outcome = "miss"
        value: Optional[Any] = None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_at, stored, ttl = entry
                if self.clock.now() - stored_at > ttl:
                    del self._entries[key]
                    self.stats.expirations += 1
                    self.stats.misses += 1
                    outcome = "expired"
                else:
                    if self.max_entries is not None:
                        # LRU bookkeeping: re-insert so dict order
                        # tracks recency.  Only paid when a bound is
                        # configured — the unbounded cache keeps the
                        # plain-dict fast path.
                        del self._entries[key]
                        self._entries[key] = entry
                    self.stats.hits += 1
                    outcome = "hit"
                    value = stored
            else:
                self.stats.misses += 1
        if outcome != "miss" and self.obs.enabled:
            # Flight-recorder entry outside the lock.  Misses are the
            # overwhelmingly common case and carry no information the
            # engine's own step events don't — only hits and expiries
            # (decisions that changed the measurement's course) earn an
            # event.  The kind label is the first element of tuple keys
            # ("rr-step", "fwd-trace", ...).
            self.obs.emit_t(
                "cache.lookup",
                (
                    key[0] if isinstance(key, tuple) and key else "?",
                    outcome,
                ),
            )
        return value

    def put(
        self, key: Hashable, value: Any, negative: bool = False
    ) -> None:
        """Store *value*; ``negative=True`` marks an empty/unresponsive
        verdict that should expire after ``negative_ttl`` instead of the
        full ``ttl`` (no effect unless ``negative_ttl`` is set)."""
        if not self.enabled:
            return
        ttl = (
            self.negative_ttl
            if negative and self.negative_ttl is not None
            else self.ttl
        )
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = (self.clock.now(), value, ttl)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    oldest = next(iter(self._entries))
                    del self._entries[oldest]
                    self.stats.evictions += 1

    def contains_fresh(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            return self.clock.now() - entry[0] <= entry[2]

    def age(self, key: Hashable) -> Optional[float]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            return self.clock.now() - entry[0]

    def purge_expired(self) -> int:
        """Drop expired entries; returns how many were removed."""
        with self._lock:
            now = self.clock.now()
            expired = [
                key
                for key, (stored_at, _, ttl) in self._entries.items()
                if now - stored_at > ttl
            ]
            for key in expired:
                del self._entries[key]
            return len(expired)

    def maybe_purge(self) -> int:
        """Sweep expired entries at most once per ``purge_interval``.

        Called from the measurement path (the engine, the scheduler)
        so long-running services shed dead entries without a dedicated
        maintenance thread; returns the number removed (0 when the
        sweep is skipped).
        """
        with self._lock:
            now = self.clock.now()
            if now - self._last_purge < self.purge_interval:
                return 0
            self._last_purge = now
            return self.purge_expired()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
