"""The atlas pipeline: fast, resumable offline atlas construction.

Revtr 2.0's entire offline budget goes into the per-source traceroute
atlas (Q1) and RR atlas (Q2); the paper amortises that cost across
millions of reverse traceroutes, and this repo re-pays it on every
experiment.  The pipeline makes construction a first-class citizen
with four legs:

* **sharded build** — probe ladders flow through the batched prober
  (`Prober.rr_ping_batch` / `Internet.send_probe_batch`) and each
  unit's virtual-clock cost is assigned to the earliest-free of N
  shard lanes.  Forwarding outcomes are pure functions of each packet
  (see :func:`repro.sim.forwarding.choose_candidate`), so the sharded
  build is *byte-identical* to the serial one; the lane makespan is
  the deterministic virtual-clock cost an N-shard deployment would
  pay, the same re-simulation device as the request scheduler's
  virtual mode.  An optional threaded mode measures on a wall-clock
  thread pool instead (same hops; timestamps interleave).
* **probe dedup** — a hop address appearing in many VPs' traceroutes
  is RR-probed once per build (``RRAtlas.build(dedup=True)``); the
  savings are tallied separately from probes sent.
* **incremental refresh** — atlas entries are keyed by the simulator's
  routing generation, so ``refresh(incremental=True)`` re-probes only
  traceroutes whose paths could have changed (generation bump or
  staleness) instead of re-measuring every kept VP daily.
* **snapshot persistence** — versioned save/load of both atlases to a
  compact gzip-JSON file, stamped with the topology fingerprint so a
  snapshot can never warm-start a different simulated Internet.
"""

from __future__ import annotations

import gzip
import json
import os
import random
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.atlas import (
    DEFAULT_STALENESS,
    TracerouteAtlas,
)
from repro.core.rr_atlas import RRAtlas
from repro.net.addr import Address
from repro.net.packet import ProbeKind, TracerouteResult
from repro.obs.runtime import get_default
from repro.probing.prober import Prober
from repro.probing.traceroute import paris_traceroute

#: On-disk snapshot format tag and version.  Bump the version on any
#: incompatible change to the document layout; loaders reject other
#: versions outright rather than guessing.
SNAPSHOT_FORMAT = "revtr-atlas-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """A snapshot could not be read or parsed."""


class SnapshotMismatch(SnapshotError):
    """A readable snapshot is not compatible with this simulation."""


# ----------------------------------------------------------------------
# Shard-lane accounting
# ----------------------------------------------------------------------


class LaneSchedule:
    """Earliest-free-lane assignment over virtual task durations.

    The deterministic counterpart of running tasks on *n* parallel
    shards: each task lands on the lane that frees up first (ties to
    the lowest index), and the makespan is the maximum lane time.
    Pure arithmetic on observed durations — nothing here touches the
    clock, so it can re-schedule a serially executed probe stream.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one lane")
        self.lanes = [0.0] * n

    def assign(self, duration: float) -> int:
        lane = min(range(len(self.lanes)), key=lambda i: (self.lanes[i], i))
        self.lanes[lane] += duration
        return lane

    @property
    def makespan(self) -> float:
        return max(self.lanes)


@dataclass
class StageReport:
    """Deterministic accounting for one pipeline stage."""

    stage: str
    mode: str
    shards: int
    tasks: int = 0
    #: summed virtual-clock cost of every task (what a 1-shard build pays)
    serial_seconds: float = 0.0
    #: virtual-clock finish time of the slowest shard lane
    makespan_seconds: float = 0.0
    probes_sent: int = 0
    probes_deduped: int = 0
    lane_seconds: List[float] = field(default_factory=list)
    #: refresh-only dispositions (empty for build stages)
    dispositions: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Virtual-clock speedup of the sharded schedule over serial."""
        if self.makespan_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.makespan_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "mode": self.mode,
            "shards": self.shards,
            "tasks": self.tasks,
            "serial_virtual_seconds": round(self.serial_seconds, 6),
            "makespan_virtual_seconds": round(self.makespan_seconds, 6),
            "virtual_speedup": round(self.speedup, 3),
            "probes_sent": self.probes_sent,
            "probes_deduped": self.probes_deduped,
            "lane_virtual_seconds": [
                round(lane, 6) for lane in self.lane_seconds
            ],
            "dispositions": dict(self.dispositions),
        }


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------


class AtlasPipeline:
    """Drives sharded, deduplicated, resumable atlas construction.

    One pipeline serves one prober (and therefore one simulated
    Internet); it can build atlases for any number of sources.  With
    ``threaded=False`` (the default) every stage is deterministic and
    byte-identical to the plain serial ``TracerouteAtlas.build`` /
    ``RRAtlas.build`` path — sharding is accounted on virtual lanes,
    batching and dedup only remove redundant work.  ``threaded=True``
    measures traceroutes on a wall-clock thread pool instead; hop
    contents still match, but clock interleaving (timestamps, probe
    accounting order) does not.
    """

    def __init__(
        self,
        prober: Prober,
        atlas_vps: Sequence[Address],
        spoofer_vps: Sequence[Address],
        shards: int = 4,
        dedup: bool = True,
        max_spoofers_per_hop: int = 2,
        threaded: bool = False,
        instrumentation=None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.prober = prober
        self.atlas_vps = list(atlas_vps)
        self.spoofer_vps = list(spoofer_vps)
        self.shards = shards
        self.dedup = dedup
        self.max_spoofers_per_hop = max_spoofers_per_hop
        self.threaded = threaded
        self.obs = (
            instrumentation
            if instrumentation is not None
            else get_default()
        )
        self.reports: List[StageReport] = []
        self._sim_lock = threading.Lock()

    # -- stage accounting ----------------------------------------------

    def _finish_stage(
        self,
        stage: str,
        durations: Sequence[float],
        probes_sent: int = 0,
        probes_deduped: int = 0,
        dispositions: Optional[Dict[str, int]] = None,
    ) -> StageReport:
        lanes = LaneSchedule(self.shards)
        for duration in durations:
            lanes.assign(duration)
        report = StageReport(
            stage=stage,
            mode="threaded" if self.threaded else "virtual",
            shards=self.shards,
            tasks=len(durations),
            serial_seconds=sum(durations),
            makespan_seconds=lanes.makespan,
            probes_sent=probes_sent,
            probes_deduped=probes_deduped,
            lane_seconds=list(lanes.lanes),
            dispositions=dict(dispositions or {}),
        )
        self.reports.append(report)
        if self.obs.enabled:
            self.obs.observe(
                "atlas_build_seconds",
                report.makespan_seconds,
                stage=stage,
                mode=report.mode,
            )
            self.obs.set_gauge("atlas_pipeline_shards", self.shards)
            for index, lane in enumerate(lanes.lanes):
                self.obs.set_gauge(
                    "atlas_shard_virtual_seconds",
                    lane,
                    stage=stage,
                    shard=str(index),
                )
            if probes_deduped:
                self.obs.inc(
                    "atlas_probes_deduped_total",
                    probes_deduped,
                    atlas="rr",
                )
            self.obs.emit(
                "atlas.stage",
                stage=stage,
                mode=report.mode,
                shards=self.shards,
                tasks=report.tasks,
                serial=round(report.serial_seconds, 6),
                makespan=round(report.makespan_seconds, 6),
                probes_sent=probes_sent,
                probes_deduped=probes_deduped,
                **(
                    {"dispositions": dict(dispositions)}
                    if dispositions
                    else {}
                ),
            )
        return report

    # -- traceroute atlas stage ----------------------------------------

    def build_atlas(
        self,
        atlas: TracerouteAtlas,
        rng: random.Random,
        size: Optional[int] = None,
    ) -> StageReport:
        """Measure the traceroute atlas (Q1) across shard lanes.

        Consumes exactly one shuffle from *rng*, like
        :meth:`TracerouteAtlas.build`, so pipeline and serial builds
        draw identical VP selections from identically seeded RNGs.
        """
        if self.threaded:
            return self._build_atlas_threaded(atlas, rng, size)
        before = self.prober.counter.of(ProbeKind.TRACEROUTE)
        atlas.build(self.prober, self.atlas_vps, rng, size=size)
        return self._finish_stage(
            "traceroute",
            atlas.last_build_durations,
            probes_sent=self.prober.counter.of(ProbeKind.TRACEROUTE)
            - before,
        )

    def _build_atlas_threaded(
        self,
        atlas: TracerouteAtlas,
        rng: random.Random,
        size: Optional[int],
    ) -> StageReport:
        chosen = atlas.choose_build_vps(self.atlas_vps, rng, size)
        generation = self.prober.internet.routing_generation
        before = self.prober.counter.of(ProbeKind.TRACEROUTE)
        durations: Dict[Address, float] = {}
        traces: Dict[Address, TracerouteResult] = {}

        def measure(vp: Address) -> None:
            # The simulator is single-threaded at heart: the virtual
            # clock, token buckets, and forwarding caches all mutate
            # under probing, so each traceroute holds the sim lock (the
            # request scheduler's threaded mode does the same).
            with self._sim_lock:
                started = self.prober.clock.now()
                trace = paris_traceroute(self.prober, vp, atlas.source)
                durations[vp] = self.prober.clock.now() - started
                traces[vp] = trace

        with ThreadPoolExecutor(max_workers=self.shards) as pool:
            list(pool.map(measure, chosen))
        for vp in chosen:
            trace = traces[vp]
            if trace.responsive_hops():
                atlas.add(trace, generation=generation)
        return self._finish_stage(
            "traceroute",
            [durations[vp] for vp in chosen],
            probes_sent=self.prober.counter.of(ProbeKind.TRACEROUTE)
            - before,
        )

    # -- RR atlas stage -------------------------------------------------

    def build_rr(self, rr_atlas: RRAtlas) -> StageReport:
        """Probe every atlas hop with RR toward the source (Q2).

        Always batched; dedup follows the pipeline setting.  The
        threaded flag is ignored here — RR ladders are already walked
        through the batch prober, and splitting them across threads
        would only contend on the sim lock.
        """
        rr_atlas.build(
            self.prober,
            self.spoofer_vps,
            self.max_spoofers_per_hop,
            dedup=self.dedup,
            batched=True,
        )
        stats = rr_atlas.last_build
        return self._finish_stage(
            "rr",
            stats.unit_costs,
            probes_sent=stats.probes_sent,
            probes_deduped=stats.probes_deduped,
        )

    # -- refresh stage ---------------------------------------------------

    def refresh(
        self,
        atlas: TracerouteAtlas,
        rng: random.Random,
        incremental: bool = True,
    ) -> StageReport:
        """Random++ refresh, skipping generation-fresh traceroutes."""
        atlas.refresh(
            self.prober, self.atlas_vps, rng, incremental=incremental
        )
        summary = atlas.last_refresh
        report = self._finish_stage(
            "refresh",
            atlas.last_build_durations,
            dispositions=summary,
        )
        if self.obs.enabled:
            for disposition, count in summary.items():
                self.obs.inc(
                    "atlas_refresh_traceroutes_total",
                    count,
                    disposition=disposition,
                )
        return report

    # -- whole-pipeline conveniences -------------------------------------

    def bootstrap(
        self,
        source: Address,
        rng: random.Random,
        size: Optional[int] = None,
        max_size: Optional[int] = None,
        staleness: float = DEFAULT_STALENESS,
    ) -> Tuple[TracerouteAtlas, RRAtlas]:
        """Cold-build both atlases for *source*."""
        atlas = TracerouteAtlas(
            source,
            max_size=max_size if max_size is not None else (size or 1000),
            staleness=staleness,
        )
        self.build_atlas(atlas, rng, size=size)
        rr_atlas = RRAtlas(atlas)
        self.build_rr(rr_atlas)
        return atlas, rr_atlas

    def load_or_build(
        self,
        path: str,
        source: Address,
        rng: random.Random,
        size: Optional[int] = None,
        max_size: Optional[int] = None,
        staleness: float = DEFAULT_STALENESS,
        save: bool = True,
    ) -> Tuple[TracerouteAtlas, RRAtlas, bool]:
        """Warm-start from *path* if compatible, else cold-build.

        Returns ``(atlas, rr_atlas, warm)``; a cold build is saved back
        to *path* (unless ``save=False``) so the next run warm-starts.
        """
        internet = self.prober.internet
        if os.path.exists(path):
            try:
                atlas, rr_atlas = load_snapshot(
                    path, internet, instrumentation=self.obs
                )
            except SnapshotError:
                pass
            else:
                if (
                    atlas.source == source
                    and rr_atlas is not None
                ):
                    if self.obs.enabled:
                        self.obs.inc(
                            "atlas_snapshots_total",
                            op="warm_start",
                            outcome="hit",
                        )
                        self.obs.emit(
                            "atlas.snapshot",
                            op="warm_start",
                            outcome="hit",
                            path=path,
                        )
                    return atlas, rr_atlas, True
        if self.obs.enabled:
            self.obs.inc(
                "atlas_snapshots_total", op="warm_start", outcome="miss"
            )
            self.obs.emit(
                "atlas.snapshot",
                op="warm_start",
                outcome="miss",
                path=path,
            )
        atlas, rr_atlas = self.bootstrap(
            source, rng, size=size, max_size=max_size, staleness=staleness
        )
        if save:
            save_snapshot(
                path, atlas, rr_atlas, internet, instrumentation=self.obs
            )
        return atlas, rr_atlas, False


# ----------------------------------------------------------------------
# Snapshot persistence
# ----------------------------------------------------------------------


def _topology_descriptor(internet) -> Dict[str, object]:
    return {
        "fingerprint": internet.topology_fingerprint(),
        "seed": internet.config.seed,
        "routers": len(internet.routers),
        "hosts": len(internet.hosts),
    }


def save_snapshot(
    path: str,
    atlas: TracerouteAtlas,
    rr_atlas: Optional[RRAtlas],
    internet,
    instrumentation=None,
) -> None:
    """Serialise both atlases to a versioned gzip-JSON snapshot.

    The snapshot embeds the topology fingerprint (config + seed
    digest) and the routing generation at save time; loading validates
    the fingerprint so stale snapshots can never leak traces from a
    different simulated Internet into an experiment.
    """
    obs = (
        instrumentation if instrumentation is not None else get_default()
    )
    doc = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "topology": _topology_descriptor(internet),
        "routing_generation": internet.routing_generation,
        "atlas": {
            "source": atlas.source,
            "max_size": atlas.max_size,
            "staleness": atlas.staleness,
            "traceroutes": [
                {
                    "src": trace.src,
                    "hops": trace.hops,
                    "reached": trace.reached,
                    "flow_id": trace.flow_id,
                    "timestamp": trace.timestamp,
                    "generation": atlas.generation_of(trace.src),
                }
                for trace in atlas.traceroutes.values()
            ],
            "useful": sorted(atlas._useful),
        },
        "rr_atlas": None
        if rr_atlas is None
        else {
            "mapping": [
                [addr, vp, index]
                for addr, (vp, index) in rr_atlas._mapping.items()
            ],
            "probes_sent": rr_atlas.probes_sent,
            "probes_deduped": rr_atlas.probes_deduped,
        },
    }
    payload = json.dumps(doc, separators=(",", ":")).encode()
    # mtime=0 and an empty embedded filename keep byte-identical
    # snapshots byte-identical on disk regardless of when or where
    # they were written.
    with open(path, "wb") as raw:
        with gzip.GzipFile(
            filename="", fileobj=raw, mode="wb", mtime=0
        ) as fh:
            fh.write(payload)
    if obs.enabled:
        obs.inc("atlas_snapshots_total", op="save", outcome="ok")
        obs.emit("atlas.snapshot", op="save", outcome="ok", path=path)


def load_snapshot(
    path: str,
    internet,
    instrumentation=None,
) -> Tuple[TracerouteAtlas, Optional[RRAtlas]]:
    """Load a snapshot saved by :func:`save_snapshot`.

    Raises :class:`SnapshotError` on unreadable/corrupt files and
    :class:`SnapshotMismatch` when the snapshot's format, version, or
    topology fingerprint does not match *internet*.
    """
    obs = (
        instrumentation if instrumentation is not None else get_default()
    )

    def _fail(outcome: str, exc: SnapshotError) -> SnapshotError:
        if obs.enabled:
            obs.inc("atlas_snapshots_total", op="load", outcome=outcome)
            obs.emit(
                "atlas.snapshot", op="load", outcome=outcome, path=path
            )
        return exc

    try:
        with gzip.open(path, "rb") as fh:
            doc = json.loads(fh.read().decode())
    except (OSError, EOFError, ValueError) as exc:
        raise _fail(
            "error", SnapshotError(f"cannot read snapshot {path}: {exc}")
        ) from exc
    if (
        not isinstance(doc, dict)
        or doc.get("format") != SNAPSHOT_FORMAT
    ):
        raise _fail(
            "error",
            SnapshotError(f"{path} is not a {SNAPSHOT_FORMAT} file"),
        )
    if doc.get("version") != SNAPSHOT_VERSION:
        raise _fail(
            "mismatch",
            SnapshotMismatch(
                f"snapshot version {doc.get('version')} != "
                f"supported {SNAPSHOT_VERSION}"
            ),
        )
    fingerprint = internet.topology_fingerprint()
    saved = doc.get("topology", {}).get("fingerprint")
    if saved != fingerprint:
        raise _fail(
            "mismatch",
            SnapshotMismatch(
                f"snapshot topology {saved} does not match this "
                f"simulation ({fingerprint}); rebuild instead of "
                "replaying traces from a different Internet"
            ),
        )

    spec = doc["atlas"]
    atlas = TracerouteAtlas(
        spec["source"],
        max_size=spec["max_size"],
        staleness=spec["staleness"],
    )
    for entry in spec["traceroutes"]:
        trace = TracerouteResult(
            src=entry["src"],
            dst=spec["source"],
            hops=list(entry["hops"]),
            reached=entry["reached"],
            flow_id=entry["flow_id"],
            timestamp=entry["timestamp"],
        )
        atlas.add(trace, generation=entry.get("generation"))
    for vp in spec.get("useful", []):
        atlas.mark_useful(vp)

    rr_atlas: Optional[RRAtlas] = None
    rr_spec = doc.get("rr_atlas")
    if rr_spec is not None:
        rr_atlas = RRAtlas(atlas)
        rr_atlas._mapping = {
            addr: (vp, index)
            for addr, vp, index in rr_spec["mapping"]
        }
        rr_atlas.probes_sent = rr_spec.get("probes_sent", 0)
        rr_atlas.probes_deduped = rr_spec.get("probes_deduped", 0)
    if obs.enabled:
        obs.inc("atlas_snapshots_total", op="load", outcome="ok")
        obs.emit("atlas.snapshot", op="load", outcome="ok", path=path)
    return atlas, rr_atlas
