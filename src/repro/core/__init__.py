"""The revtr core: the paper's measurement system.

Implements the full revtr 2.0 pipeline of Fig. 2 — traceroute atlas
(Q1), RR-atlas intersection aliases (Q2), ingress-based vantage-point
selection (Q3), no-timestamp policy (Q4), intradomain-only symmetry
assumptions (Q5) — plus the revtr 1.0 baseline reimplementation used
throughout Section 5's comparisons.
"""

from repro.core.atlas import TracerouteAtlas
from repro.core.atlas_pipeline import (
    AtlasPipeline,
    LaneSchedule,
    SnapshotError,
    SnapshotMismatch,
    StageReport,
    load_snapshot,
    save_snapshot,
)
from repro.core.adjacency import AdjacencyDatabase
from repro.core.cache import MeasurementCache
from repro.core.flags import flag_suspicious_links
from repro.core.ingress import (
    GlobalOrderSelector,
    IngressDirectory,
    IngressSelector,
    SetCoverSelector,
)
from repro.core.result import (
    HopTechnique,
    ReverseHop,
    ReverseTracerouteResult,
    RevtrStatus,
)
from repro.core.revtr import EngineConfig, RevtrEngine
from repro.core.revtr_legacy import legacy_engine_config
from repro.core.rr_atlas import RRAtlas
from repro.core.symmetry import SymmetryPolicy, SymmetryStepper

__all__ = [
    "TracerouteAtlas",
    "AtlasPipeline",
    "LaneSchedule",
    "SnapshotError",
    "SnapshotMismatch",
    "StageReport",
    "load_snapshot",
    "save_snapshot",
    "AdjacencyDatabase",
    "MeasurementCache",
    "flag_suspicious_links",
    "GlobalOrderSelector",
    "IngressDirectory",
    "IngressSelector",
    "SetCoverSelector",
    "HopTechnique",
    "ReverseHop",
    "ReverseTracerouteResult",
    "RevtrStatus",
    "EngineConfig",
    "RevtrEngine",
    "legacy_engine_config",
    "RRAtlas",
    "SymmetryPolicy",
    "SymmetryStepper",
]
