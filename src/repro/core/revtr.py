"""The Reverse Traceroute engine.

Implements the Fig. 2 control flow. One engine instance measures
reverse paths toward one *source*; an
:class:`~repro.core.result.ReverseTracerouteResult` is built
hop-by-hop from the destination back to the source:

1. **Intersection** — is the current hop on a known route to the
   source? revtr 2.0 consults the traceroute atlas directly and through
   the RR atlas's precomputed aliases (Q2); revtr 1.0 consults offline
   alias datasets (ITDK-like) and the /30 heuristic.
2. **Record route** — direct RR ping from the source, then batches of
   spoofed RR pings from vantage points chosen by the pluggable
   selector (Q3).
3. **Timestamp** — revtr 1.0 only (Q4): tsprespec tests of traceroute
   adjacencies.
4. **Assume symmetry** — forward traceroute to the current hop; adopt
   the penultimate hop per the symmetry policy (Q5), or abort.

The same engine class, parameterised by :class:`EngineConfig`, realises
revtr 2.0, revtr 1.0, and every intermediate variant of Table 4 /
Fig. 5c ("revtr 2.0 = revtr 1.0 + ingress + cache − TS + RR atlas").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.alias.resolver import AliasResolver
from repro.asmap.ip2as import IPToASMapper
from repro.asmap.relationships import ASRelationships
from repro.core.adjacency import AdjacencyDatabase
from repro.core.atlas import Intersection, TracerouteAtlas
from repro.core.cache import MeasurementCache
from repro.core.flags import flag_suspicious_links
from repro.core.result import (
    HopTechnique,
    ReverseHop,
    ReverseTracerouteResult,
    RevtrStatus,
)
from repro.core.rr_atlas import RRAtlas
from repro.core.segcache import ReverseSegmentCache
from repro.core.symmetry import LinkType, SymmetryPolicy, SymmetryStepper
from repro.net.addr import Address, is_private, prefix_of, slash30_peer
from repro.obs.runtime import attach, get_default
from repro.probing.prober import Prober


@dataclass
class EngineConfig:
    """Feature flags selecting a system variant.

    The defaults are revtr 2.0; see
    :func:`repro.core.revtr_legacy.legacy_engine_config` for revtr 1.0.
    """

    use_rr_atlas: bool = True
    use_alias_intersection: bool = False
    use_timestamp: bool = False
    use_cache: bool = True
    symmetry: SymmetryPolicy = SymmetryPolicy.INTRADOMAIN_ONLY
    batch_size: int = 3
    max_path_hops: int = 48
    max_batches_per_hop: int = 60
    max_adjacencies: int = 8
    ping_check: bool = True
    #: Appendix A request option: refuse intersections with atlas
    #: traceroutes older than this (seconds); the engine re-measures
    #: the traceroute online instead of using the stale copy. None
    #: accepts any age (the atlas refresh policy handles staleness).
    max_intersection_age: Optional[float] = None
    #: Appendix E option: spend one redundant spoofed RR per adopted
    #: hop to detect destination-based-routing violations; suspected
    #: violations are flagged on the result rather than silently
    #: trusted.
    detect_violations: bool = False
    #: Graceful-degradation knobs, all off by default so fault-free
    #: runs stay byte-identical.  ``retry_budget`` is the total extra
    #: technique attempts one measurement may spend recovering from
    #: transient failures; ``ping_retries`` / ``rr_retries`` cap how
    #: many of those any single liveness check / direct-RR step may
    #: consume.
    retry_budget: int = 0
    ping_retries: int = 2
    rr_retries: int = 1
    #: When a measurement dead-ends, re-ping the destination: if it
    #: stopped answering mid-measurement, report ``UNRESPONSIVE``
    #: (keeping the partial path) instead of ``INCOMPLETE``.
    recheck_unresponsive: bool = False
    #: Cross-measurement amortization (§5): consult the per-source
    #: reverse-segment cache before the RR/TS/fallback steps, splicing
    #: chains of hops that earlier completed measurements toward this
    #: source already revealed.  Off by default; with it off the
    #: engine's outputs are byte-identical to pre-cache behaviour.
    segment_cache: bool = False
    #: Coalesce concurrent measurements inside one
    #: :meth:`RevtrEngine.measure_many` call: duplicate
    #: (current-hop, VP-set) spoofed RR batches collapse into one
    #: probe batch and ping checks dedupe per destination /24.  Off by
    #: default; with it off ``measure_many`` is a literal sequential
    #: loop over :meth:`RevtrEngine.measure`.
    coalesce_batches: bool = False
    #: Negative-result TTL for the measurement cache: empty RR-step
    #: outcomes expire after this many virtual seconds instead of the
    #: full day-scale TTL.  None keeps the historical single-TTL
    #: behaviour.
    negative_ttl: Optional[float] = None

    def variant_name(self) -> str:
        """Short label for reports (Table 4 row names)."""
        if (
            self.use_rr_atlas
            and not self.use_timestamp
            and self.use_cache
        ):
            # revtr 2.0 does not use offline alias datasets for
            # intersection; a config that adds them is a distinct
            # variant and must not reuse the revtr2.0 row label.
            if self.use_alias_intersection:
                return "revtr2.0+alias"
            return "revtr2.0"
        parts = ["revtr1.0"]
        if self.use_cache:
            parts.append("+cache")
        if not self.use_timestamp:
            parts.append("-TS")
        if self.use_rr_atlas:
            parts.append("+RRatlas")
        if not self.use_alias_intersection:
            # The revtr 1.0 baseline intersects through offline alias
            # datasets; flag configs that switch that off.
            parts.append("-alias")
        return " ".join(parts)


class _BatchCoalescer:
    """Shared dedup state for one coalesced ``measure_many`` group.

    Lives only for the duration of the call that installed it, so
    coalescing never reuses anything across groups — cross-group
    amortization is the segment cache's job, with its generation/TTL
    invalidation; this object just collapses *concurrent* duplicates.
    """

    def __init__(self) -> None:
        #: (current hop, VP tuple) -> replies of the batch that ran
        self.batches: Dict[tuple, list] = {}
        #: destination /24 prefix -> liveness verdict of the first
        #: ping check against that prefix
        self.ping_alive: Dict[object, bool] = {}
        self.batches_coalesced = 0
        self.pings_coalesced = 0


class RevtrEngine:
    """Measures reverse traceroutes from arbitrary destinations back to
    one source."""

    def __init__(
        self,
        prober: Prober,
        source: Address,
        atlas: TracerouteAtlas,
        selector,
        ip2as: IPToASMapper,
        relationships: ASRelationships,
        config: Optional[EngineConfig] = None,
        rr_atlas: Optional[RRAtlas] = None,
        resolver: Optional[AliasResolver] = None,
        adjacency: Optional[AdjacencyDatabase] = None,
        cache: Optional[MeasurementCache] = None,
        spoofers: Sequence[Address] = (),
        instrumentation=None,
        segcache: Optional[ReverseSegmentCache] = None,
    ) -> None:
        self.prober = prober
        self.source = source
        self.atlas = atlas
        self.selector = selector
        self.ip2as = ip2as
        self.relationships = relationships
        self.config = config if config is not None else EngineConfig()
        self.rr_atlas = rr_atlas
        self.resolver = resolver if resolver is not None else AliasResolver()
        self.adjacency = adjacency
        self.cache = (
            cache
            if cache is not None
            else MeasurementCache(
                prober.clock, enabled=self.config.use_cache
            )
        )
        self.cache.enabled = self.config.use_cache
        if self.config.negative_ttl is not None:
            self.cache.negative_ttl = self.config.negative_ttl
        #: per-source reverse-segment cache; None unless the
        #: ``segment_cache`` flag is on, so the flags-off hot loop
        #: tests one attribute and touches nothing else.  The service
        #: passes a shared instance so every engine measuring toward
        #: one source amortizes the same segments.
        self.segcache: Optional[ReverseSegmentCache] = None
        if self.config.segment_cache:
            self.segcache = (
                segcache
                if segcache is not None
                else ReverseSegmentCache(prober.clock, prober.internet)
            )
        #: in-flight coalescer; installed by :meth:`measure_many` when
        #: ``coalesce_batches`` is on, None otherwise
        self._coalescer: Optional[_BatchCoalescer] = None
        #: observability facade (metrics + tracing); the NULL default
        #: makes every instrumented call a no-op.  Components still on
        #: the null default inherit the engine's sink so one parameter
        #: instruments the whole measurement path.
        self.obs = (
            instrumentation if instrumentation is not None else get_default()
        )
        attach(
            self.obs, self.cache, self.atlas, self.rr_atlas,
            self.segcache,
        )
        # Per-hop counters are plain tallies mirrored into the registry
        # at collection time (pull-style), so the measurement loop pays
        # a dict increment, not a registry update, per step.
        self._obs_on = bool(self.obs.enabled)
        self._t_steps: Dict[str, int] = {
            kind: 0
            for kind in (
                "intersect_hit", "intersect_miss", "rr_direct",
                "rr_spoofed", "ts", "symmetry",
            )
        }
        self._t_measurements: Dict[str, int] = {}
        self._t_hops: Dict[str, int] = {}
        self._t_stale = 0
        #: degradation retries by technique (revtr_retries_total)
        self._t_retries: Dict[str, int] = {}
        #: retry budget left in the measurement in flight
        self._m_retry_left = 0
        #: (outcome, link-or-None) -> count, for revtr_fallbacks_total
        self._t_fallbacks: Dict[tuple, int] = {}
        #: intersect attempts in the measurement in flight (annotated
        #: onto the root span when it closes)
        self._m_intersects = 0
        #: ping-check outcome of the measurement in flight (None until
        #: a check runs; carried on the measure.end event)
        self._m_ping = None
        #: flight-recorder handle, or None when observability is off —
        #: emit sites test one local instead of two attribute hops.
        self._ev = self.obs.events if self._obs_on else None
        #: engine-constant event fields, precomputed once: the begin
        #: event is on every measurement's hot path and
        #: ``variant_name()`` re-derives its label from flags per call
        self._variant_label = self.config.variant_name()
        self._source_str = str(source)
        if self._obs_on:
            self.obs.register_collect_source(self._obs_collect)
            self.obs.register_gauge_source(self._obs_gauges)
        self.spoofers = list(spoofers)
        self.symmetry = SymmetryStepper(
            prober, ip2as, source, cache=self.cache
        )
        self._terminal: Set[Address] = set()
        self._atlas_by_group: Dict[int, List[Address]] = {}
        self._harvest_terminal_from_atlas()
        if self.config.use_alias_intersection:
            self.refresh_alias_index()

    # ------------------------------------------------------------------
    # Bootstrap helpers
    # ------------------------------------------------------------------

    def _step(self, kind: str) -> None:
        """Tally one ``revtr_steps_total{kind=...}`` step.

        Unconditional, like the prober's :class:`ProbeCounter` — step
        counts are engine state (see :attr:`step_counts`); attached
        instrumentation mirrors them at collection time.
        """
        self._t_steps[kind] += 1

    @property
    def step_counts(self) -> Dict[str, int]:
        """Technique steps taken so far, keyed by kind."""
        return dict(self._t_steps)

    @property
    def retry_counts(self) -> Dict[str, int]:
        """Degradation retries taken so far, keyed by technique."""
        return dict(self._t_retries)

    def _retry_allowed(self, technique: str) -> bool:
        """Spend one unit of the measurement's retry budget, if any."""
        if self._m_retry_left <= 0:
            return False
        self._m_retry_left -= 1
        self._t_retries[technique] = (
            self._t_retries.get(technique, 0) + 1
        )
        if self._ev is not None:
            self._ev.emit(
                "degrade.retry",
                technique=technique,
                budget_left=self._m_retry_left,
            )
        return True

    def _obs_collect(self) -> Dict:
        out = {}
        for kind, n in self._t_steps.items():
            if n:
                out[("revtr_steps_total", (("kind", kind),))] = float(n)
        for status, n in self._t_measurements.items():
            out[
                ("revtr_measurements_total", (("status", status),))
            ] = float(n)
        for technique, n in self._t_hops.items():
            out[
                ("revtr_hops_total", (("technique", technique),))
            ] = float(n)
        if self._t_stale:
            out[("atlas_stale_intersections_total", ())] = float(
                self._t_stale
            )
        for technique, n in self._t_retries.items():
            out[
                ("revtr_retries_total", (("technique", technique),))
            ] = float(n)
        for (outcome, link), n in self._t_fallbacks.items():
            labels = (("outcome", outcome),)
            if link is not None:
                labels += (("link", link),)
            out[("revtr_fallbacks_total", labels)] = float(n)
        return out

    def _obs_gauges(self) -> Dict:
        """Pull-style staleness gauges over the source's atlas.

        Evaluated only at collection (snapshot/sample) time: ages are
        derived from the traceroutes' stored timestamps against the
        sim clock, so the measurement path never touches them.
        """
        out: Dict = {}
        traceroutes = getattr(self.atlas, "traceroutes", None)
        if not traceroutes:
            return out
        now = self.prober.clock.now()
        ages = [
            max(0.0, now - trace.timestamp)
            for trace in traceroutes.values()
        ]
        source_label = (("source", self._source_str),)
        out[("atlas_traceroutes_current", source_label)] = float(
            len(ages)
        )
        out[
            ("atlas_age_seconds", source_label + (("stat", "oldest"),))
        ] = max(ages)
        out[
            ("atlas_age_seconds", source_label + (("stat", "mean"),))
        ] = sum(ages) / len(ages)
        return out

    def _fallback(
        self,
        outcome: str,
        link: Optional[str] = None,
        hop: Optional[Address] = None,
        penultimate: Optional[Address] = None,
    ) -> None:
        key = (outcome, link)
        self._t_fallbacks[key] = self._t_fallbacks.get(key, 0) + 1
        if self._ev is not None:
            # One event carries the whole assume-symmetry decision
            # (outcome + the penultimate hop it hinged on) — the hot
            # loop emits a single record per fallback, not two.
            self._ev.emit_t(
                "fallback", (outcome, link, hop, penultimate)
            )

    def _harvest_terminal_from_atlas(self) -> None:
        """Learn the source's first-hop addresses from atlas tails."""
        for trace in self.atlas.traceroutes.values():
            if not trace.reached:
                continue
            hops = trace.responsive_hops()
            if len(hops) >= 2 and hops[-1] == self.source:
                self._terminal.add(hops[-2])

    def refresh_alias_index(self) -> None:
        """Rebuild the ITDK-group → atlas-hop index (revtr 1.0 path)."""
        self._atlas_by_group.clear()
        for addr in self.atlas.all_hops():
            group = self.resolver.group_of(addr)
            if group is not None:
                self._atlas_by_group.setdefault(group, []).append(addr)

    def _is_terminal(self, addr: Address) -> bool:
        if addr == self.source:
            return True
        if addr in self._terminal:
            return True
        return any(
            self.resolver.aligned(addr, t) for t in self._terminal
        )

    # ------------------------------------------------------------------
    # Techniques
    # ------------------------------------------------------------------

    def _intersect(self, current: Address) -> Optional[Intersection]:
        # A miss is a handful of dict lookups — tallied (the
        # ``revtr_steps_total{kind="intersect_miss"}`` counter and the
        # atlas's own hit/miss series) but not worth a tree node.  A
        # hit ends the measurement, so it gets a marker span carrying
        # the intersection details; the stitch span that follows holds
        # the interesting timing.
        self._m_intersects += 1
        hit, via = self._intersect_lookup(current)
        if hit is None:
            # No event for the miss: the loop proceeds to an rr.step,
            # whose event implies the preceding atlas miss (the ledger
            # synthesises the miss line), so the hot path pays one
            # emit per hop instead of two.
            self._step("intersect_miss")
            return None
        self._step("intersect_hit")
        with self.obs.span(
            "atlas.intersect", hop=current, via=via
        ) as span:
            span.annotate(vp=hit.vp, index=hit.index)
        if self._ev is not None:
            self._ev.emit_t(
                "intersect", (current, "hit", via, hit.vp, hit.index)
            )
        return hit

    def _intersect_lookup(
        self, current: Address
    ) -> Tuple[Optional[Intersection], str]:
        """The raw lookup; returns (hit, which index answered)."""
        hit = self.atlas.lookup(current)
        if hit is not None:
            return hit, "atlas"
        if self.config.use_rr_atlas and self.rr_atlas is not None:
            hit = self.rr_atlas.lookup(current)
            if hit is not None:
                return hit, "rr-atlas"
        if self.config.use_alias_intersection:
            peer = slash30_peer(current)
            if peer is not None:
                hit = self.atlas.lookup(peer)
                if hit is not None:
                    return hit, "slash30-peer"
            group = self.resolver.group_of(current)
            if group is not None:
                for alias in self._atlas_by_group.get(group, ()):
                    hit = self.atlas.lookup(alias)
                    if hit is not None:
                        return hit, "itdk-alias"
        return None, "miss"

    def _rr_step(
        self, current: Address
    ) -> Tuple[List[Address], HopTechnique]:
        """Try to reveal reverse hops from *current* with record route."""
        ev = self._ev
        with self.obs.span("rr.step", hop=current) as span:
            key = ("rr-step", self.source, current)
            cached = self.cache.get(key)
            if cached is not None:
                span.annotate(cached=True, revealed=len(cached[0]))
                if ev is not None:
                    ev.emit_t(
                        "rr.step",
                        (current, "cache", cached[1]._value_,
                         len(cached[0])),
                    )
                return cached

            faults = getattr(self.prober.internet, "faults", None)
            mark = faults.injections if faults is not None else 0

            result = self.prober.rr_ping(self.source, current)
            self._step("rr_direct")
            attempts = 0
            while (
                not result.responded
                and attempts < self.config.rr_retries
                and self._retry_allowed("rr")
            ):
                # A silent direct RR may just be a lost packet; the
                # budget buys another look before the spoofed fleet
                # (10 s of batch timeout per round) takes over.
                attempts += 1
                result = self.prober.rr_ping(self.source, current)
                self._step("rr_direct")
            if result.responded and result.reverse_hops():
                outcome = (result.reverse_hops(), HopTechnique.RR)
                span.annotate(
                    direct_responded=True,
                    technique="rr",
                    revealed=len(outcome[0]),
                )
                if ev is not None:
                    ev.emit_t(
                        "rr.step",
                        (current, "direct", "rr", len(outcome[0])),
                    )
                self.cache.put(key, outcome)
                return outcome

            batches = 0
            for results in self._spoofed_batches(current):
                batches += 1
                if not results:
                    # Health filtering can empty a batch entirely
                    # (every VP quarantined, no healthy replacement).
                    continue
                best = max(results, key=lambda r: len(r.reverse_hops()))
                if best.reverse_hops():
                    outcome = (
                        best.reverse_hops(),
                        HopTechnique.SPOOFED_RR,
                    )
                    span.annotate(
                        direct_responded=result.responded,
                        technique="spoofed-rr",
                        revealed=len(outcome[0]),
                    )
                    if ev is not None:
                        ev.emit_t(
                            "rr.step",
                            (current, "spoofed", "spoofed-rr",
                             len(outcome[0]), batches),
                        )
                    self.cache.put(key, outcome)
                    return outcome
            outcome = ([], HopTechnique.SPOOFED_RR)
            span.annotate(
                direct_responded=result.responded,
                technique="spoofed-rr",
                revealed=0,
            )
            if ev is not None:
                ev.emit_t(
                    "rr.step",
                    (current, "none", "spoofed-rr", 0, batches),
                )
            if faults is not None and faults.injections != mark:
                # An injected fault fired during this step: the empty
                # outcome may be transient, so keep it out of the
                # day-scale negative cache (positive outcomes above
                # are still cached — revealed hops are real however
                # lossy the path was).
                if ev is not None:
                    ev.emit("degrade.nocache", hop=current)
            else:
                self.cache.put(key, outcome, negative=True)
                if self.segcache is not None:
                    # The router ignored the whole RR arsenal: remember
                    # that so sibling measurements skip the fleet too.
                    self.segcache.store_negative(current)
            return outcome

    def _spoofed_batches(self, current: Address):
        """Yield spoofed-RR result batches for *current*.

        With a session-capable selector this runs the §4.3 feedback
        loop: each probe's recorded slots are reported back, and VPs
        whose measurements missed their expected ingress are replaced
        by the next-closest candidates. Otherwise the selector's
        static batch order is used.
        """
        session = None
        if hasattr(self.selector, "session"):
            session = self.selector.session(current)
        if session is not None:
            for index in range(self.config.max_batches_per_hop):
                batch = [
                    vp
                    for vp in session.next_batch()
                    if vp != self.source
                ]
                if not batch:
                    return
                results = self._instrumented_batch(
                    current, batch, index=index, mode="session"
                )
                for probe_result in results:
                    session.observe(
                        probe_result.vp, probe_result.slots
                    )
                yield results
            return
        for index, batch in enumerate(self.selector.batches(current)):
            if index >= self.config.max_batches_per_hop:
                return
            vps = [vp for vp in batch if vp != self.source]
            if not vps:
                continue
            yield self._instrumented_batch(
                current, vps, index=index, mode="static"
            )

    def _instrumented_batch(
        self, current: Address, vps, index: int = 0, mode: str = "static"
    ):
        health = getattr(self.prober, "health", None)
        if health is not None:
            vps, replaced = health.filter_batch(
                vps, self.spoofers, exclude=(self.source,)
            )
            if replaced and self._ev is not None:
                self._ev.emit(
                    "degrade.replace",
                    hop=current,
                    batch=index,
                    replaced=replaced,
                )
            if not vps:
                return []
        coalescer = self._coalescer
        batch_key = None
        if coalescer is not None:
            # Duplicate (current-hop, VP-set) batches across the
            # in-flight group collapse into the first one's replies:
            # no probes, no 10 s spoof timeout, no batch event.
            batch_key = (current, tuple(vps))
            cached = coalescer.batches.get(batch_key)
            if cached is not None:
                coalescer.batches_coalesced += 1
                return cached
        with self.obs.span(
            "rr.spoofed_batch", hop=current, vps=len(vps),
            batched=True,
        ) as span:
            results = self.prober.spoofed_rr_batch(
                vps, current, spoof_as=self.source
            )
            responses = sum(1 for r in results if r.responded)
            span.annotate(responses=responses)
        self._step("rr_spoofed")
        if self._ev is not None:
            # The VP list is the "which vantage points and why" record:
            # order reflects the selector's ranking (ingress-closest
            # first in session mode).
            self._ev.emit_t(
                "rr.batch",
                (current, index, mode, tuple(vps), responses),
            )
        if coalescer is not None:
            coalescer.batches[batch_key] = results
        return results

    def _refresh_intersection(self, hit, current: Address):
        """Re-measure an over-age atlas traceroute online (Appendix A's
        per-request staleness bound), then retry the lookup."""
        from repro.probing.traceroute import paris_traceroute

        if self._ev is not None:
            self._ev.emit(
                "intersect.refresh", hop=current, vp=hit.vp
            )
        trace = paris_traceroute(self.prober, hit.vp, self.source)
        if trace.responsive_hops():
            self.atlas.add(trace)
        if self.config.use_alias_intersection:
            self.refresh_alias_index()
        return self._intersect(current)

    def _violation_check(
        self, revealed: List[Address]
    ) -> Optional[Address]:
        """One redundant spoofed RR to the first revealed hop: does the
        reverse path still run through the second (Appendix E)?

        Returns the suspect hop address, or None when consistent or
        inconclusive.
        """
        first, expected = revealed[0], revealed[1]
        if is_private(first) or is_private(expected):
            return None
        redundant = self.prober.rr_ping(self.source, first)
        if not redundant.responded:
            return None
        hops = [
            hop
            for hop in redundant.reverse_hops()[1:]
            if not is_private(hop)
        ]
        if not hops:
            return None
        nxt = hops[0]
        if nxt == expected or slash30_peer(nxt) == expected:
            return None
        if self.resolver.aligned(nxt, expected):
            return None
        return first

    def _timestamp_step(self, current: Address) -> Optional[Address]:
        """revtr 1.0's adjacency tests via tsprespec (Fig. 1e).

        The /30 peer of an RR-discovered egress interface is the far
        end of the link — a prime next-hop candidate, not an alias —
        so it is tested first, followed by traceroute-graph
        adjacencies of the hop and of its peer.
        """
        if self.adjacency is None:
            return None
        with self.obs.span("ts.step", hop=current) as span:
            self._step("ts")
            candidates: List[Address] = []
            peer = slash30_peer(current)
            if peer is not None:
                candidates.append(peer)
            candidates += self.adjacency.neighbors(
                current,
                aliases=[peer] if peer else None,
                limit=self.config.max_adjacencies,
            )
            seen_candidates: Set[Address] = set()
            candidates = [
                c
                for c in candidates
                if not (c in seen_candidates or seen_candidates.add(c))
            ][: self.config.max_adjacencies]
            span.annotate(candidates=len(candidates))
            for adj in candidates:
                result = self.prober.ts_ping(
                    self.source, current, [current, adj]
                )
                if not result.responded and self.spoofers:
                    result = self.prober.ts_ping(
                        self.spoofers[0],
                        current,
                        [current, adj],
                        spoof_as=self.source,
                    )
                if result.adjacency_on_reverse_path:
                    span.annotate(adjacent=str(adj))
                    if self._ev is not None:
                        self._ev.emit_t(
                            "ts.step",
                            (current, len(candidates), adj),
                        )
                    return adj
            span.annotate(adjacent=None)
            if self._ev is not None:
                self._ev.emit_t(
                    "ts.step", (current, len(candidates), None)
                )
            return None

    # ------------------------------------------------------------------
    # The measurement loop
    # ------------------------------------------------------------------

    def _segcache_store(self, hops: List[ReverseHop]) -> None:
        """Feed a completed path's edges into the segment cache.

        Each consecutive ``(a, b)`` hop pair is one reusable reverse
        edge: from ``a.addr`` the next reverse hop toward the source is
        ``b.addr``, discovered by *b*'s technique — valid for every
        measurement toward this source under destination-based routing.
        The destination placeholder hop is never a successor, and
        duplicate-address pairs (alias stitches) are skipped.
        """
        segcache = self.segcache
        for a, b in zip(hops, hops[1:]):
            if b.technique is HopTechnique.DESTINATION:
                continue
            if a.addr == b.addr:
                continue
            segcache.store(
                a.addr,
                b.addr,
                b.technique,
                assumed_link=b.assumed_link,
            )

    def measure_many(
        self, dsts: Sequence[Address]
    ) -> List[ReverseTracerouteResult]:
        """Measure a batch of destinations toward the source.

        With ``coalesce_batches`` off this is literally a sequential
        loop over :meth:`measure`, so results are byte-identical to N
        independent calls.  With it on, the group shares one
        :class:`_BatchCoalescer`: duplicate (current-hop, VP-set)
        spoofed batches collapse into the first one's replies and ping
        checks dedupe per destination /24 — same reverse hops, a
        fraction of the probes and spoof timeouts.
        """
        if not self.config.coalesce_batches:
            return [self.measure(dst) for dst in dsts]
        self._coalescer = _BatchCoalescer()
        try:
            return [self.measure(dst) for dst in dsts]
        finally:
            self._coalescer = None

    def measure(self, dst: Address) -> ReverseTracerouteResult:
        """Measure the reverse path from *dst* back to the source.

        With live instrumentation, each call produces one trace tree
        rooted at a ``revtr.measure`` span (readable off
        ``engine.obs.tracer``) and bumps the ``revtr_*`` metrics; with
        the null facade the control flow is byte-for-byte the same.
        """
        ev = self._ev
        mid = previous_mid = None
        if ev is not None:
            mid = ev.new_measurement_id()
            previous_mid = ev.set_current(mid)
            ev.emit_t(
                "measure.begin",
                (self._source_str, dst, self._variant_label),
            )
        try:
            with self.obs.span(
                "revtr.measure",
                src=str(self.source),
                dst=dst,
                variant=self.config.variant_name(),
            ) as span:
                result = self._measure(dst)
                span.annotate(
                    status=result.status.value,
                    hops=len(result.hops),
                    intersect_attempts=self._m_intersects,
                )
            result.measurement_id = mid
            return result
        finally:
            if ev is not None:
                ev.set_current(previous_mid)

    def _measure(self, dst: Address) -> ReverseTracerouteResult:
        clock = self.prober.clock
        start_time = clock.now()
        # Opportunistic TTL sweep so a long-running service does not
        # accumulate a day of dead entries (rate-limited internally).
        self.cache.maybe_purge()
        self._m_intersects = 0
        self._m_retry_left = self.config.retry_budget
        # Ping-check outcome (None until checked); rides on the
        # measure.end event instead of an event of its own — one ping
        # is not worth a flight-recorder record per measurement.
        self._m_ping = None
        # Fixed-size position marker, not a Counter copy: the
        # per-measurement probe delta must not scale with how many
        # probe kinds the global counter has accumulated.
        counts_before = self.prober.counter.mark()

        result = ReverseTracerouteResult(
            src=self.source, dst=dst, status=RevtrStatus.INCOMPLETE
        )

        if self.segcache is not None:
            fast = self._splice_full_path(
                dst, result, start_time, counts_before
            )
            if fast is not None:
                return fast

        if self.config.ping_check:
            # Annotated on the root span rather than opening a span of
            # its own: a single ping is not worth a tree node on the
            # measurement hot path.
            coalescer = self._coalescer
            dst_prefix = (
                prefix_of(dst) if coalescer is not None else None
            )
            alive = (
                coalescer.ping_alive.get(dst_prefix)
                if coalescer is not None
                else None
            )
            if alive is not None:
                # A sibling in the coalesced group already checked this
                # destination prefix's liveness.
                coalescer.pings_coalesced += 1
            else:
                alive = self.prober.ping(self.source, dst) is not None
                attempts = 0
                while (
                    not alive
                    and attempts < self.config.ping_retries
                    and self._retry_allowed("ping")
                ):
                    attempts += 1
                    alive = (
                        self.prober.ping(self.source, dst) is not None
                    )
                if coalescer is not None:
                    coalescer.ping_alive[dst_prefix] = alive
            self._m_ping = alive
            if self._obs_on:
                root = self.obs.tracer.active_span
                if root is not None:
                    root.annotate(ping_check=alive)
            if not alive:
                result.status = RevtrStatus.UNRESPONSIVE
                self._finish(result, start_time, counts_before)
                return result

        hops: List[ReverseHop] = [
            ReverseHop(dst, HopTechnique.DESTINATION)
        ]
        seen: Set[Address] = {dst}
        current = dst
        status: Optional[RevtrStatus] = None
        source = self.source

        while len(hops) < self.config.max_path_hops:
            if self._is_terminal(current):
                hops.append(ReverseHop(source, HopTechnique.SOURCE))
                status = RevtrStatus.COMPLETE
                break

            hit = self._intersect(current)
            if (
                hit is not None
                and self.config.max_intersection_age is not None
                and clock.now() - hit.timestamp
                > self.config.max_intersection_age
            ):
                # Appendix A option: the user asked for fresher data
                # than the atlas holds — re-measure the traceroute
                # online before trusting the intersection.
                hit = self._refresh_intersection(hit, current)
            if hit is not None:
                result.intersection_vp = hit.vp
                result.stale_intersection = self.atlas.is_stale(
                    hit, clock.now()
                )
                if result.stale_intersection:
                    self._t_stale += 1
                self.atlas.mark_useful(hit.vp)
                with self.obs.span(
                    "stitch", vp=hit.vp, index=hit.index
                ) as stitch:
                    before = len(hops)
                    for addr in self.atlas.suffix(hit):
                        technique = (
                            HopTechnique.SOURCE
                            if addr == source
                            else HopTechnique.INTERSECTION
                        )
                        hops.append(ReverseHop(addr, technique))
                    if hops[-1].addr != source:
                        hops.append(
                            ReverseHop(source, HopTechnique.SOURCE)
                        )
                    stitch.annotate(
                        hops=len(hops) - before,
                        stale=result.stale_intersection,
                    )
                if self._ev is not None:
                    self._ev.emit_t(
                        "stitch",
                        (hit.vp, hit.index, len(hops) - before,
                         result.stale_intersection),
                    )
                status = RevtrStatus.COMPLETE
                break

            revealed: List[Address] = []
            technique = HopTechnique.SPOOFED_RR
            skip_rr = False
            if self.segcache is not None:
                # The atlas missed; before spending probes, splice any
                # chain of reverse hops that an earlier completed
                # measurement toward this source already revealed from
                # here.  Generation/TTL invalidation happens inside the
                # lookup; the seen-set stop keeps splices loop-free.
                limit = self.config.max_path_hops - len(hops)
                chain, known_dead = self.segcache.chain(
                    current, limit, stop=seen.__contains__
                )
                if known_dead:
                    # Cached negative entry: this router recently
                    # ignored the entire RR arsenal — skip straight to
                    # the TS/fallback steps instead of re-aiming the
                    # VP fleet at it.
                    skip_rr = True
                    if self._ev is not None:
                        self._ev.emit_t(
                            "splice.negative", (current,)
                        )
                elif chain:
                    addrs = [entry.next_hop for entry in chain]
                    if (
                        self.config.detect_violations
                        and len(addrs) >= 2
                    ):
                        # Spliced chains earn the same Appendix E
                        # redundant-probe gating as RR-revealed hops:
                        # reuse must ride behind the violation check,
                        # not around it.
                        suspect = self._violation_check(addrs)
                        if suspect is not None:
                            result.suspected_violations.append(suspect)
                    terminated = False
                    next_current: Optional[Address] = None
                    spliced_before = len(hops)
                    for entry in chain:
                        addr = entry.next_hop
                        if addr == source:
                            hops.append(
                                ReverseHop(source, HopTechnique.SOURCE)
                            )
                            status = RevtrStatus.COMPLETE
                            terminated = True
                            break
                        hops.append(
                            ReverseHop(
                                addr,
                                entry.technique,
                                assumed_link=entry.assumed_link,
                            )
                        )
                        seen.add(addr)
                        if not is_private(addr):
                            next_current = addr
                    # Mid-chain hops are provably non-terminal: the
                    # completed measurement that stored them continued
                    # past them (a terminal hop would have ended that
                    # path with a cached hop -> source edge, which the
                    # loop above adopts).  Only a partial chain's last
                    # hop needs the alias-of-source check, so the
                    # per-hop ``_is_terminal`` scan collapses to one.
                    if (
                        not terminated
                        and next_current is not None
                        and self._is_terminal(next_current)
                    ):
                        hops.append(
                            ReverseHop(source, HopTechnique.SOURCE)
                        )
                        status = RevtrStatus.COMPLETE
                        terminated = True
                    spliced = len(hops) - spliced_before
                    self.segcache.note_splice(spliced)
                    if self._ev is not None:
                        self._ev.emit_t(
                            "splice", (current, spliced, terminated)
                        )
                    if terminated:
                        break
                    if next_current is not None:
                        current = next_current
                        continue
                    # Every spliced hop was private: fall through to
                    # the RR step from the pre-splice current hop.

            if not skip_rr:
                revealed, technique = self._rr_step(current)
            fresh = [addr for addr in revealed if addr not in seen]
            if (
                fresh
                and self.config.detect_violations
                and len(revealed) >= 2
            ):
                suspect = self._violation_check(revealed)
                if suspect is not None:
                    result.suspected_violations.append(suspect)
            if fresh:
                terminated = False
                next_current: Optional[Address] = None
                adopted_before = len(hops)
                for addr in fresh:
                    hops.append(ReverseHop(addr, technique))
                    seen.add(addr)
                    if not is_private(addr):
                        next_current = addr
                    if self._is_terminal(addr):
                        hops.append(
                            ReverseHop(source, HopTechnique.SOURCE)
                        )
                        status = RevtrStatus.COMPLETE
                        terminated = True
                        break
                if self._ev is not None:
                    self._ev.emit_t(
                        "hops.adopted",
                        (
                            technique._value_,
                            tuple(
                                [
                                    hop.addr
                                    for hop in hops[adopted_before:]
                                    if hop.technique is technique
                                ]
                            ),
                        ),
                    )
                if terminated:
                    break
                if next_current is not None:
                    current = next_current
                    continue
                # Every fresh hop was private: fall through.

            if self.config.use_timestamp:
                adjacent = self._timestamp_step(current)
                if adjacent is not None and adjacent not in seen:
                    hops.append(
                        ReverseHop(adjacent, HopTechnique.TIMESTAMP)
                    )
                    seen.add(adjacent)
                    current = adjacent
                    continue

            with self.obs.span(
                "symmetry.assume", hop=current
            ) as sym_span:
                outcome = self.symmetry.step(current)
                sym_span.annotate(
                    link=outcome.link.value,
                    penultimate=(
                        None
                        if outcome.penultimate is None
                        else str(outcome.penultimate)
                    ),
                    adjacent_to_source=outcome.adjacent_to_source,
                )
            self._step("symmetry")
            if outcome.traceroute is not None:
                first = next(
                    (h for h in outcome.traceroute.hops if h is not None),
                    None,
                )
                if first is not None:
                    self._terminal.add(first)
            if outcome.adjacent_to_source:
                self._fallback("adjacent-source", hop=current)
                hops.append(ReverseHop(source, HopTechnique.SOURCE))
                status = RevtrStatus.COMPLETE
                break
            if (
                outcome.penultimate is None
                or outcome.penultimate in seen
            ):
                self._fallback("dead-end", hop=current)
                status = RevtrStatus.INCOMPLETE
                if (
                    self.config.recheck_unresponsive
                    and self.config.ping_check
                    and self.prober.ping(self.source, dst) is None
                ):
                    # The destination died mid-measurement: classify
                    # as UNRESPONSIVE while keeping every hop gathered
                    # before the stall (``result.hops`` is assigned
                    # after the loop, so the partial path and its
                    # probe accounting survive this break).
                    status = RevtrStatus.UNRESPONSIVE
                    if self._ev is not None:
                        self._ev.emit(
                            "degrade.unresponsive",
                            dst=dst,
                            hops_kept=len(hops),
                        )
                break
            if (
                self.config.symmetry is SymmetryPolicy.INTRADOMAIN_ONLY
                and outcome.link is not LinkType.INTRA
            ):
                self._fallback(
                    "aborted-interdomain",
                    outcome.link.value,
                    hop=current,
                    penultimate=outcome.penultimate,
                )
                status = RevtrStatus.ABORTED_INTERDOMAIN
                break
            self._fallback(
                "adopted",
                outcome.link.value,
                hop=current,
                penultimate=outcome.penultimate,
            )
            hops.append(
                ReverseHop(
                    outcome.penultimate,
                    HopTechnique.ASSUMED_SYMMETRY,
                    assumed_link=outcome.link.value,
                )
            )
            seen.add(outcome.penultimate)
            current = outcome.penultimate

        result.hops = hops
        result.status = (
            status if status is not None else RevtrStatus.INCOMPLETE
        )
        self._finish(result, start_time, counts_before)
        return result

    def _splice_full_path(
        self,
        dst: Address,
        result: ReverseTracerouteResult,
        start_time: float,
        counts_before: tuple,
    ) -> Optional[ReverseTracerouteResult]:
        """Serve a measurement entirely from the segment cache.

        When the cache holds an unbroken chain from *dst* all the way
        to the source, every hop of the reverse path was adopted by an
        earlier completed measurement inside the entry TTL — and that
        measurement already verified the destination's liveness.
        Re-running the ping check and the per-hop loop would re-derive
        the same path one cache hit at a time, so the whole path is
        spliced in one step for zero probes.  Any break in the chain —
        miss, negative entry, generation bump, TTL expiry, a loop, or
        a chain longer than the hop budget — returns None and the
        normal measurement loop (ping check included) takes over.
        """
        chain, _ = self.segcache.chain(
            dst, self.config.max_path_hops - 1
        )
        if not chain or chain[-1].next_hop != self.source:
            return None
        addrs = [entry.next_hop for entry in chain]
        if self.config.detect_violations and len(addrs) >= 2:
            # Whole-path reuse earns the same Appendix E gating as a
            # mid-path splice: ride behind the violation check.
            suspect = self._violation_check(addrs)
            if suspect is not None:
                result.suspected_violations.append(suspect)
        hops: List[ReverseHop] = [
            ReverseHop(dst, HopTechnique.DESTINATION)
        ]
        for entry in chain[:-1]:
            hops.append(
                ReverseHop(
                    entry.next_hop,
                    entry.technique,
                    assumed_link=entry.assumed_link,
                )
            )
        hops.append(ReverseHop(self.source, HopTechnique.SOURCE))
        self.segcache.note_splice(len(chain))
        if self._obs_on:
            root = self.obs.tracer.active_span
            if root is not None:
                root.annotate(full_splice=True)
        if self._ev is not None:
            self._ev.emit_t(
                "splice", (dst, len(chain), True, True)
            )
        result.hops = hops
        result.status = RevtrStatus.COMPLETE
        self._finish(result, start_time, counts_before)
        return result

    def _finish(
        self,
        result: ReverseTracerouteResult,
        start_time: float,
        counts_before: tuple,
    ) -> None:
        clock = self.prober.clock
        result.duration = clock.now() - start_time
        result.probe_counts = self.prober.counter.delta(counts_before)
        if (
            self.segcache is not None
            and result.status is RevtrStatus.COMPLETE
        ):
            self._segcache_store(result.hops)
        if result.hops:
            result.flagged_as_path = flag_suspicious_links(
                result.addresses(), self.ip2as, self.relationships
            )
        status = result.status.value
        self._t_measurements[status] = (
            self._t_measurements.get(status, 0) + 1
        )
        for technique, n in result.hops_by_technique().items():
            value = technique.value
            self._t_hops[value] = self._t_hops.get(value, 0) + n
        if self._obs_on:
            self.obs.observe(
                "revtr_measure_duration_seconds", result.duration
            )
        if self._ev is not None:
            # The closing ledger entry: final status, the probe budget
            # actually spent, and the full path with per-hop technique
            # attribution (so `repro explain` can reconstruct the
            # decision record even if mid-flight events were dropped).
            self._ev.emit_t(
                "measure.end",
                (
                    status,
                    len(result.hops),
                    result.duration,
                    # None when no ping-check ran (disabled, or the
                    # whole-path splice fast path skipped it).
                    self._m_ping,
                    dict(result.probe_counts),
                    # Tuples, not lists: stored field payloads live in
                    # the event ring, and all-atomic tuples (unlike
                    # lists) let the GC untrack the whole record after
                    # one scan.  ._value_ not .value: Enum.value goes
                    # through a DynamicClassAttribute descriptor (~4x
                    # the cost of a plain slot read), and this runs
                    # once per hop per measurement.
                    tuple(
                        [
                            (hop.addr, hop.technique._value_)
                            for hop in result.hops
                        ]
                    ),
                ),
            )
