"""Reverse traceroute results.

A reverse traceroute is a hop sequence *from the destination back to
the source*, each hop annotated with the technique that discovered it —
the provenance revtr 2.0 exposes so users can judge trustworthiness
(Insight 1.10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.addr import Address


class HopTechnique(enum.Enum):
    """How a reverse hop was measured."""

    DESTINATION = "destination"  # the starting point D itself
    RR = "rr"  # record route from the source
    SPOOFED_RR = "spoofed-rr"  # spoofed record route from a VP
    TIMESTAMP = "ts"  # tsprespec adjacency test
    INTERSECTION = "intersection"  # completed from the traceroute atlas
    ASSUMED_SYMMETRY = "assumed"  # penultimate forward-traceroute hop
    SOURCE = "source"  # the source S itself


class RevtrStatus(enum.Enum):
    """Final disposition of a reverse traceroute request."""

    COMPLETE = "complete"
    ABORTED_INTERDOMAIN = "aborted-interdomain-symmetry"
    INCOMPLETE = "incomplete"  # ran out of techniques / hops / loop
    UNRESPONSIVE = "destination-unresponsive"

    @property
    def succeeded(self) -> bool:
        return self is RevtrStatus.COMPLETE


@dataclass(frozen=True)
class ReverseHop:
    """One hop of a reverse traceroute."""

    addr: Address
    technique: HopTechnique
    assumed_link: Optional[str] = None  # "intra" / "inter" for ASSUMED

    def __str__(self) -> str:
        suffix = f" [{self.technique.value}]"
        return f"{self.addr}{suffix}"


@dataclass
class ReverseTracerouteResult:
    """A measured reverse path from *dst* back to *src*."""

    src: Address
    dst: Address
    status: RevtrStatus
    hops: List[ReverseHop] = field(default_factory=list)
    duration: float = 0.0
    probe_counts: Dict[str, int] = field(default_factory=dict)
    stale_intersection: bool = False
    intersection_vp: Optional[Address] = None
    #: hops where redundant probing suggested a violation of
    #: destination-based routing (Appendix E's optional detection)
    suspected_violations: List[Address] = field(default_factory=list)
    #: AS-level path with "*" markers from the §5.2.2 flagging;
    #: populated by :func:`repro.core.flags.flag_suspicious_links`.
    flagged_as_path: Optional[List[object]] = None
    #: flight-recorder correlation id (``m-000001``); set only when the
    #: engine runs with live instrumentation, and deliberately NOT part
    #: of :meth:`to_dict` so measurement output stays byte-identical
    #: with events on or off.  ``repro explain <id>`` keys off it.
    measurement_id: Optional[str] = None

    # ------------------------------------------------------------------

    def addresses(self) -> List[Address]:
        """The hop addresses, destination first, source last."""
        return [hop.addr for hop in self.hops]

    def techniques(self) -> List[HopTechnique]:
        return [hop.technique for hop in self.hops]

    def assumed_hops(self) -> List[ReverseHop]:
        return [
            hop
            for hop in self.hops
            if hop.technique is HopTechnique.ASSUMED_SYMMETRY
        ]

    @property
    def has_symmetry_assumption(self) -> bool:
        return bool(self.assumed_hops())

    @property
    def is_partial(self) -> bool:
        """Unfinished, but carrying real reverse hops.

        Degraded measurements (injected faults, mid-measure stalls)
        land here: more than the destination placeholder hop was
        revealed, yet the path never reached the source.  The service
        layer surfaces these separately from clean completions.
        """
        return (
            self.status is not RevtrStatus.COMPLETE
            and len(self.hops) > 1
        )

    @property
    def has_interdomain_assumption(self) -> bool:
        return any(h.assumed_link == "inter" for h in self.assumed_hops())

    def hops_by_technique(self) -> Dict[HopTechnique, int]:
        counts: Dict[HopTechnique, int] = {}
        for hop in self.hops:
            counts[hop.technique] = counts.get(hop.technique, 0) + 1
        return counts

    def atlas_fraction(self) -> float:
        """Fraction of hops contributed by the traceroute atlas
        (Insight 1.5: ~56% in the paper's deployment)."""
        if not self.hops:
            return 0.0
        from_atlas = sum(
            1
            for hop in self.hops
            if hop.technique is HopTechnique.INTERSECTION
        )
        return from_atlas / len(self.hops)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view (``repro measure --json``)."""
        return {
            "src": str(self.src),
            "dst": str(self.dst),
            "status": self.status.value,
            "duration": self.duration,
            "hops": [
                {
                    "addr": str(hop.addr),
                    "technique": hop.technique.value,
                    **(
                        {"assumed_link": hop.assumed_link}
                        if hop.assumed_link is not None
                        else {}
                    ),
                }
                for hop in self.hops
            ],
            "probe_counts": dict(self.probe_counts),
            "stale_intersection": self.stale_intersection,
            "intersection_vp": (
                None
                if self.intersection_vp is None
                else str(self.intersection_vp)
            ),
            "suspected_violations": [
                str(addr) for addr in self.suspected_violations
            ],
        }

    def render(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"reverse traceroute {self.dst} -> {self.src}"
            f" [{self.status.value}] ({self.duration:.1f}s)"
        ]
        for index, hop in enumerate(self.hops):
            lines.append(f"  {index:2d}  {hop}")
        return "\n".join(lines)
