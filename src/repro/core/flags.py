"""Suspicious-link flagging (§5.2.2).

Reverse traceroutes can silently miss hops — routers that stamp RR
packets with private addresses or forward without stamping. revtr 2.0
flags both cases in the AS-level path *without access to the forward
traceroute*:

* a private/unmappable hop between two AS segments becomes a ``"*"``;
* an AS link between a small AS and a provider-of-its-provider with no
  known direct relationship is the signature of a skipped AS and gets a
  ``"*"`` inserted between the two hops.

In the paper 10% of reverse traceroutes carry a flag; of the remainder,
98.3% are correct and complete at the AS level.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.asmap.ip2as import IPToASMapper
from repro.asmap.relationships import ASRelationships
from repro.net.addr import Address

#: The flag marker inserted into AS paths.
STAR = "*"

ASPathEntry = Union[int, str]


def flag_suspicious_links(
    hops: Sequence[Optional[Address]],
    ip2as: IPToASMapper,
    relationships: ASRelationships,
) -> List[ASPathEntry]:
    """Translate hop addresses to a flagged AS path.

    Returns the collapsed AS-level path with ``"*"`` markers where a
    hop is likely missing.
    """
    # Per-hop AS with None for unmappable (private / unknown).
    per_hop = [ip2as.asn(hop) for hop in hops]

    flagged: List[ASPathEntry] = []
    pending_star = False
    for asn in per_hop:
        if asn is None:
            # Unmappable hop: flag, unless at the very edge of the path.
            if flagged:
                pending_star = True
            continue
        if flagged and flagged[-1] == asn:
            pending_star = False
            continue
        if pending_star:
            flagged.append(STAR)
            pending_star = False
        flagged.append(asn)

    # Insert stars at suspicious AS links (possible unstamping router).
    result: List[ASPathEntry] = []
    previous_asn: Optional[int] = None
    for entry in flagged:
        if isinstance(entry, int) and previous_asn is not None:
            if _is_suspicious(previous_asn, entry, relationships):
                result.append(STAR)
        result.append(entry)
        if isinstance(entry, int):
            previous_asn = entry
        else:
            previous_asn = None
    return result


def _is_suspicious(
    a: int, b: int, relationships: ASRelationships
) -> bool:
    """Suspicious in either direction (the path may run either way)."""
    return relationships.is_suspicious_link(
        a, b
    ) or relationships.is_suspicious_link(b, a)


def has_flags(as_path: Sequence[ASPathEntry]) -> bool:
    return any(entry == STAR for entry in as_path)


def strip_flags(as_path: Sequence[ASPathEntry]) -> List[int]:
    return [entry for entry in as_path if isinstance(entry, int)]
