"""revtr 1.0 — the 2010 system, reimplemented (§5.2.1).

The paper compares *designs* rather than instantiations: revtr 1.0 is
re-implemented in the new codebase, given the same vantage points and
the same traceroute atlas, but with the 2010 design decisions:

* intersections found through offline alias datasets (ITDK-like) and
  the /30 heuristic rather than the RR atlas;
* vantage points ordered by destination set cover, tried until one
  reaches the destination;
* IP timestamp adjacency testing when record route fails;
* symmetry always assumed, interdomain or not;
* no cross-measurement caching.
"""

from __future__ import annotations

from repro.core.revtr import EngineConfig
from repro.core.symmetry import SymmetryPolicy


def legacy_engine_config(**overrides) -> EngineConfig:
    """An :class:`EngineConfig` with revtr 1.0's design choices.

    Keyword overrides let the Table 4 / Fig. 5c ladder enable the new
    components one at a time (``+ingress``, ``+cache``, ``-TS``,
    ``+RR atlas``).
    """
    config = EngineConfig(
        use_rr_atlas=False,
        use_alias_intersection=True,
        use_timestamp=True,
        use_cache=False,
        symmetry=SymmetryPolicy.ALWAYS,
    )
    for name, value in overrides.items():
        if not hasattr(config, name):
            raise TypeError(f"unknown EngineConfig field {name!r}")
        setattr(config, name, value)
    return config
