"""The symmetry-assumption step (design question Q5).

When no technique uncovers the next reverse hop, Reverse Traceroute
issues a forward traceroute from the source to the current hop and
considers the penultimate hop. revtr 1.0 always adopted it; revtr 2.0
adopts it only when the (penultimate, current) link is *intradomain* —
the Section 4.4 study found intradomain links symmetric in 90% of
cases but interdomain ones in only 57% — and aborts otherwise
(Insight 1.10: better no answer than an untrustworthy one).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.asmap.ip2as import IPToASMapper
from repro.core.cache import MeasurementCache
from repro.net.addr import Address
from repro.net.packet import TracerouteResult
from repro.probing.prober import Prober
from repro.probing.traceroute import paris_traceroute


class SymmetryPolicy(enum.Enum):
    """What to do with a symmetry assumption."""

    ALWAYS = "always"  # revtr 1.0
    INTRADOMAIN_ONLY = "intradomain-only"  # revtr 2.0


class LinkType(enum.Enum):
    """Classification of the (penultimate, current) link."""

    INTRA = "intra"
    INTER = "inter"
    UNKNOWN = "unknown"


@dataclass
class SymmetryOutcome:
    """Result of one symmetry step."""

    penultimate: Optional[Address]
    link: LinkType
    traceroute: Optional[TracerouteResult] = None
    #: current hop is directly adjacent to the source (1-hop traceroute)
    adjacent_to_source: bool = False


class SymmetryStepper:
    """Issues the Q5 forward traceroute and classifies the last link."""

    def __init__(
        self,
        prober: Prober,
        ip2as: IPToASMapper,
        source: Address,
        cache: Optional[MeasurementCache] = None,
    ) -> None:
        self.prober = prober
        self.ip2as = ip2as
        self.source = source
        self.cache = cache

    def _traceroute(self, dst: Address) -> TracerouteResult:
        key = ("traceroute", self.source, dst)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        trace = paris_traceroute(self.prober, self.source, dst)
        if self.cache is not None:
            self.cache.put(key, trace)
        return trace

    def classify_link(self, a: Address, b: Address) -> LinkType:
        """Intradomain / interdomain per the system's IP-to-AS view."""
        same = self.ip2as.same_as(a, b)
        if same is None:
            return LinkType.UNKNOWN
        return LinkType.INTRA if same else LinkType.INTER

    def step(self, current: Address) -> SymmetryOutcome:
        """Traceroute to *current*; propose the penultimate hop."""
        trace = self._traceroute(current)
        hops = trace.responsive_hops()
        if not trace.reached or not hops:
            return SymmetryOutcome(None, LinkType.UNKNOWN, trace)
        # The traceroute reached `current`; its final hop is current
        # itself (or an alias that answered for it).
        if len(hops) == 1:
            return SymmetryOutcome(
                None, LinkType.UNKNOWN, trace, adjacent_to_source=True
            )
        penultimate = hops[-2] if hops[-1] == current else hops[-1]
        if penultimate == current:
            return SymmetryOutcome(None, LinkType.UNKNOWN, trace)
        return SymmetryOutcome(
            penultimate,
            self.classify_link(penultimate, current),
            trace,
        )
