"""Vantage-point selection for spoofed record route (design question Q3).

revtr 2.0's insight (1.8): a BGP prefix has a fixed set of ingress
routers; all vantage points sharing an ingress see the same path from
the ingress to any destination in the prefix, so it suffices to probe
from the *closest VP to each ingress*. This module implements:

* the weekly offline survey that discovers per-prefix ingresses by
  RR-probing two destinations per prefix from every VP (§4.3), with
  the Appendix C double-stamp and loop heuristics for non-stamping
  destinations;
* greedy set cover to choose ingresses that cover the VPs;
* the online :class:`IngressSelector` that yields ordered batches of
  three VPs;
* the two baselines of §5.3: :class:`SetCoverSelector` (revtr 1.0's
  destination set cover) and :class:`GlobalOrderSelector` (VPs ranked
  by global range counts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net.addr import Address, Prefix
from repro.net.options import RecordRouteOption
from repro.probing.prober import Prober, RRPingResult
from repro.sim.network import Internet, PrefixInfo

#: Batch size for online spoofed probing (§5.3: 3 is the sweet spot).
DEFAULT_BATCH_SIZE = 3

#: Give up on an ingress after this many failed VPs in a row (§4.3).
MAX_VPS_PER_INGRESS = 5


@dataclass
class IngressInfo:
    """One discovered ingress of a BGP prefix."""

    addr: Address
    #: VPs whose paths into the prefix traverse this ingress,
    #: ordered by RR-hop distance to the ingress (closest first).
    vps: List[Address] = field(default_factory=list)
    #: distance of each VP to the ingress (parallel to ``vps``)
    distances: List[int] = field(default_factory=list)

    def coverage(self) -> int:
        return len(self.vps)


@dataclass
class PrefixSurvey:
    """Everything the weekly survey learned about one prefix."""

    prefix: Prefix
    destinations: List[Address]
    ingresses: List[IngressInfo] = field(default_factory=list)
    #: VP -> best RR distance at which it reached a destination
    in_range: Dict[Address, int] = field(default_factory=dict)
    #: VP -> mean distance over the probed destinations
    mean_distance: Dict[Address, float] = field(default_factory=dict)

    def has_vp_in_range(self) -> bool:
        return bool(self.in_range)

    def fallback_order(self) -> List[Address]:
        """VPs within range ranked by mean distance (no-ingress case)."""
        return sorted(self.in_range, key=lambda vp: self.mean_distance[vp])


class IngressDirectory:
    """The offline ingress survey and its online query side."""

    def __init__(
        self,
        internet: Internet,
        prober: Prober,
        vp_addrs: Sequence[Address],
        rng: Optional[random.Random] = None,
        use_double_stamp: bool = True,
        use_loop: bool = True,
    ) -> None:
        self.internet = internet
        self.prober = prober
        self.vp_addrs = list(vp_addrs)
        self.rng = rng if rng is not None else random.Random(0)
        self.use_double_stamp = use_double_stamp
        self.use_loop = use_loop
        self.surveys: Dict[Prefix, PrefixSurvey] = {}

    # ------------------------------------------------------------------
    # Offline survey
    # ------------------------------------------------------------------

    def survey_all(
        self, prefixes: Optional[Iterable[PrefixInfo]] = None
    ) -> None:
        """Survey every host prefix (the weekly background run)."""
        if prefixes is None:
            prefixes = self.internet.host_prefixes()
        for info in prefixes:
            survey = self.survey_prefix(info)
            if survey is not None:
                self.surveys[info.prefix] = survey

    def survey_prefix(self, info: PrefixInfo) -> Optional[PrefixSurvey]:
        """Probe two destinations of the prefix from every VP."""
        destinations = self._pick_destinations(info, count=2)
        if len(destinations) < 2:
            return None
        survey = PrefixSurvey(prefix=info.prefix, destinations=destinations)

        forward_paths: Dict[Address, List[Optional[List[Address]]]] = {}
        for vp in self.vp_addrs:
            paths: List[Optional[List[Address]]] = []
            distances: List[int] = []
            for dst in destinations:
                result = self.prober.rr_ping(vp, dst)
                paths.append(self._candidate_path(result, info.prefix))
                distance = None
                if result.responded:
                    index = result.destination_stamp_index(
                        use_double_stamp=self.use_double_stamp
                    )
                    if index is not None:
                        distance = index + 1
                if distance is not None and distance <= 8:
                    distances.append(distance)
            forward_paths[vp] = paths
            if distances:
                survey.in_range[vp] = min(distances)
                survey.mean_distance[vp] = sum(distances) / len(distances)

        candidates = self._ingress_candidates(forward_paths)
        survey.ingresses = self._set_cover(candidates, forward_paths)
        return survey

    def _pick_destinations(
        self, info: PrefixInfo, count: int
    ) -> List[Address]:
        """Find RR-responsive destinations, like the ISI-hitlist step."""
        picked: List[Address] = []
        probe_vp = self.vp_addrs[0] if self.vp_addrs else None
        if probe_vp is None:
            return picked
        for addr in sorted(info.hosts):
            result = self.prober.rr_ping(probe_vp, addr)
            if result.responded:
                picked.append(addr)
            if len(picked) >= count:
                break
        return picked

    def _candidate_path(
        self, result: RRPingResult, prefix: Prefix
    ) -> Optional[List[Address]]:
        """Forward-path addresses usable as ingress candidates.

        Truncated at the first address inside the destination prefix
        (inclusive). Falls back to the Appendix C loop heuristic when
        the destination did not stamp.
        """
        if not result.responded:
            return None
        index = result.destination_stamp_index(
            use_double_stamp=self.use_double_stamp
        )
        if index is not None:
            path = result.slots[: index + 1]
        elif self.use_loop:
            option = RecordRouteOption(list(result.slots))
            interior = option.loop_interior()
            if not interior:
                return None
            path = interior
        else:
            return None
        truncated: List[Address] = []
        for addr in path:
            truncated.append(addr)
            if prefix.contains(addr):
                break
        return truncated

    @staticmethod
    def _ingress_candidates(
        forward_paths: Dict[Address, List[Optional[List[Address]]]],
    ) -> Dict[Address, Set[Address]]:
        """Candidate ingresses per VP: addresses on *both* paths."""
        candidates: Dict[Address, Set[Address]] = {}
        for vp, paths in forward_paths.items():
            usable = [set(p) for p in paths if p]
            if len(usable) < 2:
                continue
            common = usable[0] & usable[1]
            if common:
                candidates[vp] = common
        return candidates

    def _set_cover(
        self,
        candidates: Dict[Address, Set[Address]],
        forward_paths: Dict[Address, List[Optional[List[Address]]]],
    ) -> List[IngressInfo]:
        """Greedy cover of VPs by candidate ingress addresses (§4.3)."""
        uncovered = set(candidates)
        by_ingress: Dict[Address, Set[Address]] = {}
        for vp, addrs in candidates.items():
            for addr in addrs:
                by_ingress.setdefault(addr, set()).add(vp)

        chosen: List[IngressInfo] = []
        while uncovered:
            best_count = 0
            tied: List[Address] = []
            for addr, vps in by_ingress.items():
                count = len(vps & uncovered)
                if count > best_count:
                    best_count, tied = count, [addr]
                elif count == best_count and count > 0:
                    tied.append(addr)
            if not tied:
                break
            pick = self.rng.choice(sorted(tied))
            covered = by_ingress[pick] & uncovered
            info = IngressInfo(addr=pick)
            ranked = sorted(
                covered,
                key=lambda vp: (
                    self._distance_to(forward_paths[vp], pick),
                    vp,
                ),
            )
            for vp in ranked:
                info.vps.append(vp)
                info.distances.append(
                    self._distance_to(forward_paths[vp], pick)
                )
            chosen.append(info)
            uncovered -= covered
        chosen.sort(key=lambda info: -info.coverage())
        return chosen

    @staticmethod
    def _distance_to(
        paths: List[Optional[List[Address]]], ingress: Address
    ) -> int:
        for path in paths:
            if path and ingress in path:
                return path.index(ingress) + 1
        return 1 << 10

    # ------------------------------------------------------------------
    # Online queries
    # ------------------------------------------------------------------

    def survey_for(self, addr: Address) -> Optional[PrefixSurvey]:
        prefix = self.internet.prefix_table.lookup_prefix(addr)
        if prefix is None:
            return None
        return self.surveys.get(prefix)

    def vp_order_for(self, addr: Address) -> List[Address]:
        """The §4.3 VP order: closest VP per ingress, by coverage;
        then backup VPs; then the fallback ranking."""
        survey = self.survey_for(addr)
        if survey is None:
            return []
        order: List[Address] = []
        seen: Set[Address] = set()
        if survey.ingresses:
            # Round-robin over ingresses: rank r of every ingress, then
            # rank r+1, capped at MAX_VPS_PER_INGRESS per ingress.
            for rank in range(MAX_VPS_PER_INGRESS):
                for ingress in survey.ingresses:
                    if rank < len(ingress.vps):
                        vp = ingress.vps[rank]
                        if vp not in seen:
                            order.append(vp)
                            seen.add(vp)
        for vp in survey.fallback_order():
            if vp not in seen:
                order.append(vp)
                seen.add(vp)
        return order


# ----------------------------------------------------------------------
# Selectors
# ----------------------------------------------------------------------


class IngressSelector:
    """revtr 2.0's online VP selection, batched."""

    def __init__(
        self,
        directory: IngressDirectory,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.directory = directory
        self.batch_size = batch_size

    def batches(self, dst: Address) -> List[List[Address]]:
        order = self.directory.vp_order_for(dst)
        return _chunk(order, self.batch_size)

    def session(self, dst: Address) -> "IngressProbeSession":
        """A stateful probing session with ingress feedback (§4.3)."""
        return IngressProbeSession(
            self.directory.survey_for(dst), self.batch_size
        )


def survey_vp_ranges(
    prober: Prober,
    vp_addrs: Sequence[Address],
    prefixes: Iterable[PrefixInfo],
    dests_per_prefix: int = 20,
) -> Dict[Prefix, Dict[Address, int]]:
    """Background range survey used by the revtr 1.0 baselines.

    Probes up to *dests_per_prefix* destinations in each prefix from
    every VP — the measurement-hungry approach that ate 20% of
    revtr 1.0's probing budget (Insight 1.8's "whereas" clause).
    """
    ranges: Dict[Prefix, Dict[Address, int]] = {}
    for info in prefixes:
        targets = sorted(info.hosts)[:dests_per_prefix]
        if not targets:
            continue
        per_vp: Dict[Address, int] = {}
        for vp in vp_addrs:
            best: Optional[int] = None
            for dst in targets:
                result = prober.rr_ping(vp, dst)
                distance = result.distance() if result.responded else None
                if distance is not None and distance <= 8:
                    if best is None or distance < best:
                        best = distance
            if best is not None:
                per_vp[vp] = best
        ranges[info.prefix] = per_vp
    return ranges


class SetCoverSelector:
    """revtr 1.0's selection: greedy set cover over prefixes in range.

    The cover yields one *global* VP order (the 2010 system had no
    per-destination closeness knowledge); every destination gets the
    same batches, tried until one reveals a reverse hop — which is why
    revtr 1.0 burns through many more spoofers per prefix (Fig. 6c).
    """

    def __init__(
        self,
        internet: Internet,
        ranges: Dict[Prefix, Dict[Address, int]],
        vp_addrs: Sequence[Address],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.internet = internet
        self.ranges = ranges
        self.vp_addrs = list(vp_addrs)
        self.batch_size = batch_size
        self._cover_order = self._greedy_cover()

    def _greedy_cover(self) -> List[Address]:
        remaining: Dict[Address, Set[Prefix]] = {
            vp: set() for vp in self.vp_addrs
        }
        for prefix, per_vp in self.ranges.items():
            for vp in per_vp:
                if vp in remaining:
                    remaining[vp].add(prefix)
        order: List[Address] = []
        uncovered: Set[Prefix] = set().union(*remaining.values()) if remaining else set()
        pool = dict(remaining)
        while pool:
            vp = max(
                sorted(pool), key=lambda v: len(pool[v] & uncovered)
            )
            order.append(vp)
            uncovered -= pool.pop(vp)
        return order

    def batches(self, dst: Address) -> List[List[Address]]:
        return _chunk(self._cover_order, self.batch_size)


class GlobalOrderSelector:
    """The "Global" baseline of §5.3: VPs ranked once by the number of
    prefixes they are in range of, same order for every destination."""

    def __init__(
        self,
        ranges: Dict[Prefix, Dict[Address, int]],
        vp_addrs: Sequence[Address],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        counts = {vp: 0 for vp in vp_addrs}
        for per_vp in ranges.values():
            for vp in per_vp:
                if vp in counts:
                    counts[vp] += 1
        self._order = sorted(counts, key=lambda vp: (-counts[vp], vp))
        self.batch_size = batch_size

    def batches(self, dst: Address) -> List[List[Address]]:
        return _chunk(self._order, self.batch_size)


def _chunk(items: Sequence[Address], size: int) -> List[List[Address]]:
    return [
        list(items[i : i + size]) for i in range(0, len(items), size)
    ]


class IngressProbeSession:
    """Stateful per-destination probing session (§4.3's feedback loop).

    The static order assumes every vantage point still enters the
    prefix through the ingress the weekly survey saw. When a spoofed
    measurement does *not* traverse the expected ingress, the session
    substitutes the next-closest VP for that ingress; after
    ``MAX_VPS_PER_INGRESS`` consecutive failures the ingress is
    abandoned. Exhausting all ingresses falls back to the survey's
    distance ranking.
    """

    def __init__(
        self,
        survey: Optional[PrefixSurvey],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.batch_size = batch_size
        #: per-ingress pending VP queues, in coverage order
        self._queues: List[List[Address]] = []
        self._ingress_addr: List[Address] = []
        self._failures: List[int] = []
        #: ingress definitively tested: a probe traversed it, so by
        #: destination-based routing further VPs through it are
        #: redundant ("all ingresses have been tested", §4.3)
        self._done: List[bool] = []
        self._fallback: List[Address] = []
        self._emitted: Set[Address] = set()
        if survey is not None:
            for ingress in survey.ingresses:
                self._queues.append(list(ingress.vps))
                self._ingress_addr.append(ingress.addr)
                self._failures.append(0)
                self._done.append(False)
            self._fallback = survey.fallback_order()
        #: vp -> queue index, for feedback routing
        self._vp_queue: Dict[Address, int] = {}

    def next_batch(self) -> List[Address]:
        """The next batch of VPs to try (empty when exhausted)."""
        batch: List[Address] = []
        for index, queue in enumerate(self._queues):
            if len(batch) >= self.batch_size:
                break
            if (
                self._done[index]
                or self._failures[index] >= MAX_VPS_PER_INGRESS
            ):
                continue
            while queue:
                vp = queue.pop(0)
                if vp in self._emitted:
                    continue
                batch.append(vp)
                self._emitted.add(vp)
                self._vp_queue[vp] = index
                break
        while len(batch) < self.batch_size and self._fallback:
            vp = self._fallback.pop(0)
            if vp in self._emitted:
                continue
            batch.append(vp)
            self._emitted.add(vp)
        return batch

    def observe(self, vp: Address, slots: Sequence[Address]) -> None:
        """Report a measurement's recorded slots for feedback.

        If the probe from *vp* did not traverse the ingress it was
        chosen for, count a failure against that ingress — its next
        closest VP will be tried in a later batch (§4.3).
        """
        index = self._vp_queue.get(vp)
        if index is None:
            return
        expected = self._ingress_addr[index]
        if expected in slots:
            # The ingress was traversed: it has been tested. Whatever
            # reverse hops this probe revealed is what any VP through
            # this ingress would reveal (destination-based routing).
            self._done[index] = True
            self._failures[index] = 0
        else:
            self._failures[index] += 1

    def exhausted(self) -> bool:
        if self._fallback:
            return False
        for index, queue in enumerate(self._queues):
            if (
                queue
                and not self._done[index]
                and self._failures[index] < MAX_VPS_PER_INGRESS
            ):
                return False
        return True
