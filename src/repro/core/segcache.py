"""Cross-measurement reverse-segment cache (§5 amortization).

Under destination-based routing, the reverse next hop a router R takes
toward a source S does not depend on which measurement discovered it:
once *any* reverse traceroute toward S has revealed that R forwards to
R', every later measurement that reaches R can reuse the edge while
routing is stable.  The traceroute and RR atlases exploit this for
*offline* measurements; :class:`ReverseSegmentCache` extends the same
amortization to the serving hot path, remembering every adopted hop of
every completed measurement as a ``router -> (next reverse hop,
technique)`` edge.

Validity is bounded two ways, mirroring the route-stability literature
(Leguay et al.) and the atlas's own staleness rules:

* **routing generation** — every entry is stamped with the simulator's
  ``routing_generation`` at store time; a generation bump (traffic
  engineering, topology change) invalidates it at the next lookup;
* **TTL** — entries older than ``ttl`` virtual seconds expire, exactly
  like :class:`~repro.core.cache.MeasurementCache` entries.

Negative entries remember routers that proved RR-unresponsive, so the
whole VP fleet is not re-pointed at a black hole once per measurement;
they carry their own (shorter) TTL.

Splicing a cached chain is *not* exempt from validity checking: the
engine consults this cache only after the atlas missed, and gates the
spliced hops behind the same Appendix E violation check as RR-revealed
hops (Viger et al.: spliced paths need the same artifact gating as any
inferred hop).

One cache serves one source and is shared by every engine measuring
toward that source — the whole point is that concurrent and successive
measurements amortize each other's probes.  All operations take an
internal lock so the scheduler's threaded mode can share it too.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.result import HopTechnique
from repro.net.addr import Address
from repro.obs.instrument import NULL

#: Default entry lifetime, matching the measurement cache (paper:
#: routes are stable enough to reuse for a day).
DEFAULT_SEGMENT_TTL = 86_400.0

#: Negative (unresponsive-router) entries default to a tighter bound:
#: a router that ignored RR may be load-shedding, not dead forever.
DEFAULT_NEGATIVE_TTL = 3_600.0


@dataclass(frozen=True)
class SegmentEntry:
    """One cached reverse edge: the next hop *from* the keyed router."""

    next_hop: Optional[Address]
    technique: Optional[HopTechnique]
    generation: int
    stored_at: float
    #: "intra"/"inter" for ASSUMED_SYMMETRY hops, so a splice
    #: reproduces the hop annotation byte-for-byte
    assumed_link: Optional[str] = None

    @property
    def negative(self) -> bool:
        """True for an unresponsive-router marker (no next hop)."""
        return self.next_hop is None


@dataclass
class SegmentCacheStats:
    """Accounting mirrored into ``revtr_segment_*`` metrics."""

    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    stores: int = 0
    negative_stores: int = 0
    #: chains spliced into results / total hops those chains carried
    splices: int = 0
    spliced_hops: int = 0
    invalidations_generation: int = 0
    invalidations_ttl: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.negative_hits

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return (self.hits + self.negative_hits) / total if total else 0.0

    @property
    def invalidations(self) -> int:
        return self.invalidations_generation + self.invalidations_ttl

    def as_dict(self) -> Dict[str, float]:
        """Uniform scrape format for the observability layer."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "stores": self.stores,
            "negative_stores": self.negative_stores,
            "splices": self.splices,
            "spliced_hops": self.spliced_hops,
            "invalidations_generation": self.invalidations_generation,
            "invalidations_ttl": self.invalidations_ttl,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


class ReverseSegmentCache:
    """Per-source map: router address -> cached reverse edge."""

    def __init__(
        self,
        clock,
        internet,
        ttl: float = DEFAULT_SEGMENT_TTL,
        negative_ttl: float = DEFAULT_NEGATIVE_TTL,
    ) -> None:
        self.clock = clock
        self.internet = internet
        self.ttl = ttl
        self.negative_ttl = negative_ttl
        self.stats = SegmentCacheStats()
        #: instrumentation sink; rewired via the attach protocol
        self.obs = NULL
        self._entries: Dict[Address, SegmentEntry] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _on_obs_attached(self, instrumentation) -> None:
        """Mirror stats into the ``revtr_segment_*`` families on pull."""
        if instrumentation.enabled:
            instrumentation.register_collect_source(self._obs_collect)

    def _obs_collect(self) -> Dict:
        stats = self.stats
        out: Dict = {}
        if stats.hits or stats.negative_hits:
            out[("revtr_segment_hits_total", (("kind", "chain"),))] = (
                float(stats.hits)
            )
            out[("revtr_segment_hits_total", (("kind", "negative"),))] = (
                float(stats.negative_hits)
            )
        if stats.misses:
            # Exported alongside hits so dashboards (and the SLO
            # rollup) can form a hit rate without scraping cache
            # internals.
            out[("revtr_segment_misses_total", ())] = float(
                stats.misses
            )
        if stats.splices:
            out[("revtr_segment_splices_total", ())] = float(
                stats.splices
            )
        if stats.invalidations_generation:
            out[
                (
                    "revtr_segment_invalidations_total",
                    (("reason", "generation"),),
                )
            ] = float(stats.invalidations_generation)
        if stats.invalidations_ttl:
            out[
                (
                    "revtr_segment_invalidations_total",
                    (("reason", "ttl"),),
                )
            ] = float(stats.invalidations_ttl)
        return out

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def store(
        self,
        addr: Address,
        next_hop: Address,
        technique: HopTechnique,
        assumed_link: Optional[str] = None,
    ) -> None:
        """Remember that *addr* forwards reverse traffic to *next_hop*."""
        with self._lock:
            self._entries[addr] = SegmentEntry(
                next_hop=next_hop,
                technique=technique,
                generation=self.internet.routing_generation,
                stored_at=self.clock.now(),
                assumed_link=assumed_link,
            )
            self.stats.stores += 1

    def store_negative(self, addr: Address) -> None:
        """Remember that *addr* revealed nothing to the RR arsenal."""
        with self._lock:
            self._entries[addr] = SegmentEntry(
                next_hop=None,
                technique=None,
                generation=self.internet.routing_generation,
                stored_at=self.clock.now(),
            )
            self.stats.negative_stores += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, addr: Address) -> Optional[SegmentEntry]:
        """The cached edge from *addr*, or None on miss/invalidation.

        Generation-stale and TTL-expired entries are dropped (and
        counted by reason) at lookup time, so one sweep of measurements
        after a routing change scrubs every touched entry.
        """
        with self._lock:
            entry = self._entries.get(addr)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.generation != self.internet.routing_generation:
                del self._entries[addr]
                self.stats.invalidations_generation += 1
                self.stats.misses += 1
                return None
            ttl = self.negative_ttl if entry.negative else self.ttl
            if self.clock.now() - entry.stored_at > ttl:
                del self._entries[addr]
                self.stats.invalidations_ttl += 1
                self.stats.misses += 1
                return None
            if entry.negative:
                self.stats.negative_hits += 1
            else:
                self.stats.hits += 1
            return entry

    def chain(
        self,
        addr: Address,
        limit: int,
        stop=None,
    ) -> Tuple[List[SegmentEntry], bool]:
        """Follow cached edges from *addr*, at most *limit* hops.

        Returns ``(chain, negative)`` where *chain* is the list of
        :class:`SegmentEntry` edges in reverse-path order (each entry's
        ``next_hop`` is the spliced hop) and *negative* is True when
        the *first* lookup hit a negative entry (the router is
        known-unresponsive; there is nothing to splice but the RR step
        can be skipped).  *stop* is an optional predicate; chain
        extension halts before any address for which it returns True
        (the engine passes its seen-set to keep splices loop-free).  A
        negative entry mid-chain simply ends the chain — the hops
        before it are still real.
        """
        chain: List[SegmentEntry] = []
        seen_here = {addr}
        current = addr
        # One lock acquisition for the whole walk: chains splice on
        # the serving hot path, where a per-hop lock round-trip is
        # measurable.
        with self._lock:
            generation = self.internet.routing_generation
            now = self.clock.now()
            stats = self.stats
            entries = self._entries
            while len(chain) < limit:
                entry = entries.get(current)
                if entry is None:
                    stats.misses += 1
                    break
                if entry.generation != generation:
                    del entries[current]
                    stats.invalidations_generation += 1
                    stats.misses += 1
                    break
                ttl = (
                    self.negative_ttl if entry.negative else self.ttl
                )
                if now - entry.stored_at > ttl:
                    del entries[current]
                    stats.invalidations_ttl += 1
                    stats.misses += 1
                    break
                if entry.negative:
                    stats.negative_hits += 1
                    if not chain:
                        return [], True
                    break
                stats.hits += 1
                nxt = entry.next_hop
                if nxt in seen_here or (
                    stop is not None and stop(nxt)
                ):
                    break
                chain.append(entry)
                seen_here.add(nxt)
                current = nxt
        return chain, False

    def note_splice(self, hops: int) -> None:
        """Tally one spliced chain of *hops* hops (engine-reported)."""
        with self._lock:
            self.stats.splices += 1
            self.stats.spliced_hops += hops

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def purge_expired(self) -> int:
        """Drop generation-stale and TTL-expired entries."""
        with self._lock:
            now = self.clock.now()
            generation = self.internet.routing_generation
            dead = []
            for addr, entry in self._entries.items():
                if entry.generation != generation:
                    dead.append((addr, "generation"))
                    continue
                ttl = self.negative_ttl if entry.negative else self.ttl
                if now - entry.stored_at > ttl:
                    dead.append((addr, "ttl"))
            for addr, reason in dead:
                del self._entries[addr]
                if reason == "generation":
                    self.stats.invalidations_generation += 1
                else:
                    self.stats.invalidations_ttl += 1
            return len(dead)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: Address) -> bool:
        return addr in self._entries
