"""Router adjacency database for the timestamp technique (Q4).

revtr 1.0 tested every adjacency of the current hop found in the iPlane
traceroute dataset with a tsprespec ping (Fig. 1e). We rebuild the
dataset the way the paper's comparison does (§5.2.1): from links seen
in a corpus of forward traceroutes ("the Ark traceroutes from the two
previous weeks"). revtr 2.0 does not use this at all — Insight 1.9 —
but the Table 4 / Fig. 5b ablations need it.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.net.addr import Address
from repro.net.packet import TracerouteResult
from repro.probing.prober import Prober
from repro.probing.traceroute import paris_traceroute


class AdjacencyDatabase:
    """Undirected address adjacencies harvested from traceroutes."""

    def __init__(self) -> None:
        self._adjacent: Dict[Address, Set[Address]] = {}
        self.traceroutes_ingested = 0

    def add_traceroute(self, trace: TracerouteResult) -> None:
        """Record every consecutive responsive hop pair as a link."""
        hops = [hop for hop in trace.hops if hop is not None]
        for left, right in zip(hops, hops[1:]):
            if left == right:
                continue
            self._adjacent.setdefault(left, set()).add(right)
            self._adjacent.setdefault(right, set()).add(left)
        self.traceroutes_ingested += 1

    def build_from_corpus(
        self, traceroutes: Iterable[TracerouteResult]
    ) -> None:
        for trace in traceroutes:
            self.add_traceroute(trace)

    def build_ark_style(
        self,
        prober: Prober,
        sources: Sequence[Address],
        destinations: Sequence[Address],
        n_traceroutes: int,
        rng: random.Random,
    ) -> None:
        """Collect an Ark-like corpus: random source/destination pairs."""
        for _ in range(n_traceroutes):
            src = rng.choice(sources)
            dst = rng.choice(destinations)
            if src == dst:
                continue
            self.add_traceroute(paris_traceroute(prober, src, dst))

    def neighbors(
        self,
        addr: Address,
        aliases: Optional[Sequence[Address]] = None,
        limit: Optional[int] = None,
    ) -> List[Address]:
        """Adjacencies of *addr* (and of its known aliases), sorted.

        These are the candidate next reverse hops tested via the IP
        timestamp option.
        """
        found: Set[Address] = set(self._adjacent.get(addr, ()))
        for alias in aliases or ():
            found |= self._adjacent.get(alias, set())
        found.discard(addr)
        for alias in aliases or ():
            found.discard(alias)
        ordered = sorted(found)
        return ordered[:limit] if limit is not None else ordered

    def __len__(self) -> int:
        return len(self._adjacent)

    def __contains__(self, addr: Address) -> bool:
        return addr in self._adjacent
