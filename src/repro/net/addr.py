"""IPv4 address and prefix utilities.

Addresses are plain dotted-quad strings throughout the library (they are
what operators read in traceroute output), with integer helpers for
arithmetic. A :class:`Prefix` is a lightweight CIDR block supporting
containment tests and enumeration; it is hashable so it can serve as a
routing-table key.

The /30 and /31 helpers implement the point-to-point subnetting
convention the paper leans on twice: the alias heuristic in Appendix B.1
(a record-route hop followed by a traceroute hop in the same /30 is a
point-to-point link) and the Section 4.4 target selection (the other
address of an SNMPv3 responder's /30 likely traverses that router).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional

#: Type alias used across the library for dotted-quad IPv4 addresses.
Address = str

_MAX_IPV4 = (1 << 32) - 1


@lru_cache(maxsize=1 << 20)
def addr_to_int(addr: Address) -> int:
    """Convert a dotted-quad address to its 32-bit integer value."""
    parts = addr.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {addr!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {addr!r}")
        value = (value << 8) | octet
    return value


@lru_cache(maxsize=1 << 20)
def int_to_addr(value: int) -> Address:
    """Convert a 32-bit integer to a dotted-quad address."""
    if not 0 <= value <= _MAX_IPV4:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def addr_to_str(value: int) -> Address:
    """Alias of :func:`int_to_addr`, provided for symmetry."""
    return int_to_addr(value)


def is_private(addr: Address) -> bool:
    """Return True for RFC 1918 private addresses.

    Routers that stamp record-route packets with private addresses are
    one of the sources of incomplete reverse traceroutes quantified in
    Section 5.2.2 of the paper.
    """
    value = addr_to_int(addr)
    if (value >> 24) == 10:
        return True
    if (value >> 20) == (172 << 4) | 1:  # 172.16.0.0/12
        return True
    if (value >> 16) == (192 << 8) | 168:  # 192.168.0.0/16
        return True
    return False


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR block, e.g. ``Prefix.parse("10.1.2.0/24")``.

    Attributes:
        network: integer value of the network address (host bits zero).
        length: prefix length in bits, 0..32.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"bad prefix length: {self.length}")
        if self.network & ~self.mask():
            raise ValueError(
                f"network {int_to_addr(self.network)} has host bits set "
                f"for /{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        addr, _, length = text.partition("/")
        if not length:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(addr_to_int(addr), int(length))

    @classmethod
    def of(cls, addr: Address, length: int) -> "Prefix":
        """Return the /length prefix covering *addr*."""
        mask = 0 if length == 0 else (~0 << (32 - length)) & _MAX_IPV4
        return cls(addr_to_int(addr) & mask, length)

    def mask(self) -> int:
        """Return the integer netmask for this prefix."""
        if self.length == 0:
            return 0
        return (~0 << (32 - self.length)) & _MAX_IPV4

    def contains(self, addr: Address) -> bool:
        """Return True if *addr* falls within this prefix."""
        return (addr_to_int(addr) & self.mask()) == self.network

    def contains_int(self, value: int) -> bool:
        """Integer-valued variant of :meth:`contains`."""
        return (value & self.mask()) == self.network

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    def addresses(self) -> Iterator[Address]:
        """Yield every address in the prefix (use on small prefixes)."""
        for offset in range(self.num_addresses):
            yield int_to_addr(self.network + offset)

    def nth(self, offset: int) -> Address:
        """Return the address at *offset* from the network address."""
        if not 0 <= offset < self.num_addresses:
            raise IndexError(
                f"offset {offset} out of range for /{self.length}"
            )
        return int_to_addr(self.network + offset)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Yield the sub-prefixes of the given longer length."""
        if new_length < self.length:
            raise ValueError("new_length must not be shorter")
        step = 1 << (32 - new_length)
        for network in range(
            self.network, self.network + self.num_addresses, step
        ):
            yield Prefix(network, new_length)

    def __str__(self) -> str:
        return f"{int_to_addr(self.network)}/{self.length}"


def prefix_of(addr: Address, length: int = 24) -> Prefix:
    """Return the enclosing prefix of the given length (default /24)."""
    return Prefix.of(addr, length)


def same_slash30(a: Address, b: Address) -> bool:
    """True if the two addresses share a /30 (point-to-point subnet)."""
    return (addr_to_int(a) >> 2) == (addr_to_int(b) >> 2)


def same_slash31(a: Address, b: Address) -> bool:
    """True if the two addresses share a /31."""
    return (addr_to_int(a) >> 1) == (addr_to_int(b) >> 1)


def slash30_peer(addr: Address) -> Optional[Address]:
    """Return the other usable host address of *addr*'s /30, if any.

    In the conventional /30 point-to-point allocation the two usable
    hosts are offsets 1 and 2; offsets 0 and 3 are the network and
    broadcast addresses and have no peer.
    """
    value = addr_to_int(addr)
    offset = value & 0x3
    if offset == 1:
        return int_to_addr(value + 1)
    if offset == 2:
        return int_to_addr(value - 1)
    return None


class PrefixTable:
    """Longest-prefix-match table mapping prefixes to opaque values.

    Implemented as per-length hash tables scanned from the longest
    registered length downward, which is simple and fast enough for the
    table sizes in this library (tens of thousands of prefixes).

    Lookups memoize their result per address (the probing workload
    resolves the same destinations over and over); :meth:`insert`
    flushes the memo, so a re-announced or more-specific prefix is
    always honoured.  Set :attr:`cache_enabled` to ``False`` to force
    the full longest-match scan on every call.
    """

    def __init__(self) -> None:
        self._by_length: dict = {}
        self._lengths: List[int] = []
        #: lookup memoization switch (the sim's forwarding fast path
        #: toggles it together with its own caches)
        self.cache_enabled = True
        self._value_cache: dict = {}
        self._prefix_cache: dict = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def insert(self, prefix: Prefix, value: object) -> None:
        """Insert or replace the value for *prefix*."""
        table = self._by_length.get(prefix.length)
        if table is None:
            table = {}
            self._by_length[prefix.length] = table
            self._lengths = sorted(self._by_length, reverse=True)
        table[prefix.network] = value
        self.flush_lookup_cache()

    def flush_lookup_cache(self) -> None:
        """Drop memoized lookup results (table contents changed)."""
        if self._value_cache:
            self._value_cache.clear()
        if self._prefix_cache:
            self._prefix_cache.clear()

    @property
    def cached_lookups(self) -> int:
        """Number of memoized lookup results currently held."""
        return len(self._value_cache) + len(self._prefix_cache)

    def lookup(self, addr: Address) -> Optional[object]:
        """Return the value of the longest matching prefix, or None."""
        if self.cache_enabled:
            hit = self._value_cache.get(addr, _MISS)
            if hit is not _MISS:
                self.cache_hits += 1
                return hit
            self.cache_misses += 1
        value = addr_to_int(addr)
        result = None
        for length in self._lengths:
            mask = 0 if length == 0 else (~0 << (32 - length)) & _MAX_IPV4
            hit = self._by_length[length].get(value & mask, _MISS)
            if hit is not _MISS:
                result = hit
                break
        if self.cache_enabled:
            self._value_cache[addr] = result
        return result

    def lookup_prefix(self, addr: Address) -> Optional[Prefix]:
        """Return the longest matching prefix itself, or None."""
        if self.cache_enabled:
            hit = self._prefix_cache.get(addr, _MISS)
            if hit is not _MISS:
                self.cache_hits += 1
                return hit
            self.cache_misses += 1
        value = addr_to_int(addr)
        result = None
        for length in self._lengths:
            mask = 0 if length == 0 else (~0 << (32 - length)) & _MAX_IPV4
            network = value & mask
            if network in self._by_length[length]:
                result = Prefix(network, length)
                break
        if self.cache_enabled:
            self._prefix_cache[addr] = result
        return result

    def __len__(self) -> int:
        return sum(len(t) for t in self._by_length.values())


_MISS = object()
