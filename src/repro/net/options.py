"""IP option models: record route and prespecified timestamps.

These classes model the header state that Reverse Traceroute exploits
(Section 2 of the paper). They carry no bytes — only the semantic
content a simulator needs:

* :class:`RecordRouteOption` has nine address slots (RFC 791). Routers
  on the path may stamp an address; when the destination echoes the
  probe, the *same option* keeps filling on the reverse path, which is
  how reverse hops are revealed.
* :class:`TimestampOption` (tsprespec) carries up to four prespecified
  addresses; a router stamps only if it owns the *next unstamped*
  prespecified address, giving an ordered on-path test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.net.addr import Address

#: RFC 791 limit: a 40-byte option area fits nine 4-byte addresses.
RECORD_ROUTE_SLOTS = 9

#: With both address and timestamp recorded, four pairs fit (RFC 791).
TIMESTAMP_SLOTS = 4


@dataclass
class RecordRouteOption:
    """State of a record-route option as it traverses the network."""

    slots: List[Address] = field(default_factory=list)

    def is_full(self) -> bool:
        return len(self.slots) >= RECORD_ROUTE_SLOTS

    def remaining(self) -> int:
        return RECORD_ROUTE_SLOTS - len(self.slots)

    def stamp(self, addr: Address) -> bool:
        """Record *addr* if a slot remains; return True if recorded."""
        if self.is_full():
            return False
        self.slots.append(addr)
        return True

    def copy(self) -> "RecordRouteOption":
        return RecordRouteOption(list(self.slots))

    def hops_after(self, addr: Address) -> List[Address]:
        """Return the recorded hops strictly after the first *addr*.

        Reverse Traceroute uses this to extract reverse hops following
        the destination's own stamp.
        """
        try:
            index = self.slots.index(addr)
        except ValueError:
            return []
        return self.slots[index + 1:]

    def has_loop(self) -> bool:
        """True if an address repeats with other hops in between.

        An ``a - S - a`` pattern indicates the probe reached a
        destination that did not stamp, with hop *a* traversed on both
        the forward and reverse legs (Appendix C of the paper).
        """
        return self.loop_address() is not None

    def loop_address(self) -> Optional[Address]:
        """Return the repeated address of the first loop, if any."""
        seen = {}
        for index, addr in enumerate(self.slots):
            first = seen.get(addr)
            if first is not None and index - first > 1:
                return addr
            if first is None:
                seen[addr] = index
        return None

    def loop_interior(self) -> List[Address]:
        """Return the hops inside the first loop (the ``S`` subpath)."""
        addr = self.loop_address()
        if addr is None:
            return []
        first = self.slots.index(addr)
        second = self.slots.index(addr, first + 1)
        return self.slots[first + 1:second]

    def double_stamp_address(self) -> Optional[Address]:
        """Return an address stamped in two adjacent slots, if any.

        A double stamp without the destination address appearing in the
        path indicates either an alias of the destination or a
        penultimate hop traversed in both directions (Appendix C).
        """
        for left, right in zip(self.slots, self.slots[1:]):
            if left == right:
                return left
        return None


@dataclass
class TimestampOption:
    """State of a tsprespec timestamp option.

    Attributes:
        prespecified: the sender-chosen addresses, in test order.
        stamped: parallel list of recorded timestamps (None = not yet).
    """

    prespecified: Tuple[Address, ...]
    stamped: List[Optional[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.prespecified) > TIMESTAMP_SLOTS:
            raise ValueError(
                f"at most {TIMESTAMP_SLOTS} prespecified addresses"
            )
        if not self.stamped:
            self.stamped = [None] * len(self.prespecified)

    @classmethod
    def prespec(cls, addresses: Sequence[Address]) -> "TimestampOption":
        return cls(tuple(addresses))

    def next_pending(self) -> Optional[Address]:
        """Return the next address that must stamp, or None if done."""
        for addr, stamp in zip(self.prespecified, self.stamped):
            if stamp is None:
                return addr
        return None

    def stamp_if_match(self, owned: Sequence[Address], now: int) -> bool:
        """Stamp the next pending slot if its address is in *owned*.

        Returns True if a timestamp was recorded. Order matters: a
        router that owns a *later* prespecified address must not stamp
        until all earlier addresses have stamped — this ordering is the
        entire point of the tsprespec on-path test (Fig. 1e).
        """
        pending = self.next_pending()
        if pending is None or pending not in owned:
            return False
        index = self.stamped.index(None)
        self.stamped[index] = now
        return True

    def all_stamped(self) -> bool:
        return all(stamp is not None for stamp in self.stamped)

    def stamp_count(self) -> int:
        return sum(1 for stamp in self.stamped if stamp is not None)

    def copy(self) -> "TimestampOption":
        option = TimestampOption(self.prespecified, list(self.stamped))
        return option
