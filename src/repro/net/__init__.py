"""Network substrate: IPv4 addresses, packets, IP options, and routers.

This package models the on-the-wire behaviour Reverse Traceroute depends
on: ICMP echo probes carrying IP options (record route, prespecified
timestamps), router interfaces with per-router stamping policies, and
the reply semantics (options are copied into the echo reply and continue
to be processed on the reverse path).
"""

from repro.net.addr import (
    Address,
    Prefix,
    addr_to_int,
    addr_to_str,
    int_to_addr,
    prefix_of,
    same_slash30,
    same_slash31,
    slash30_peer,
)
from repro.net.options import (
    RECORD_ROUTE_SLOTS,
    TIMESTAMP_SLOTS,
    RecordRouteOption,
    TimestampOption,
)
from repro.net.packet import EchoReply, Probe, ProbeKind, TracerouteReply
from repro.net.router import (
    Interface,
    InterfaceRole,
    Router,
    RRStampPolicy,
)

__all__ = [
    "Address",
    "Prefix",
    "addr_to_int",
    "addr_to_str",
    "int_to_addr",
    "prefix_of",
    "same_slash30",
    "same_slash31",
    "slash30_peer",
    "RECORD_ROUTE_SLOTS",
    "TIMESTAMP_SLOTS",
    "RecordRouteOption",
    "TimestampOption",
    "EchoReply",
    "Probe",
    "ProbeKind",
    "TracerouteReply",
    "Interface",
    "InterfaceRole",
    "Router",
    "RRStampPolicy",
]
