"""End-host model.

Hosts are the destinations of reverse traceroutes (the ISI-hitlist
targets of the paper's surveys) and the sources/vantage points of the
measurement system. Their responsiveness knobs reproduce Appendix F's
population statistics: most hosts answer plain pings, and 78% of those
also answer pings carrying IP options.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addr import Address


@dataclass
class Host:
    """An end host attached to an edge router.

    Attributes:
        addr: the host's address.
        asn: AS the host lives in.
        edge_router_id: router its LAN hangs off.
        responds_to_ping: answers ICMP echo without options.
        responds_to_options: answers echo requests carrying RR/TS
            options (the paper's "RR responsive").
        stamps_rr: whether, when answering an RR ping, the host records
            its own address in the remaining slot before replying.
            Non-stamping destinations trigger the Appendix C heuristics.
        is_vantage_point: part of the measurement infrastructure.
    """

    addr: Address
    asn: int
    edge_router_id: int
    responds_to_ping: bool = True
    responds_to_options: bool = True
    stamps_rr: bool = True
    is_vantage_point: bool = False

    def __hash__(self) -> int:
        return hash(self.addr)
