"""Probe and reply packet models.

A :class:`Probe` is what a vantage point injects; the simulator walks it
through the topology and produces an :class:`EchoReply` (or a
:class:`TracerouteReply` for TTL-expired probes). The ``spoofed_from``
field captures the paper's key trick (Insight 1.3): the probe's source
address may name a *different* host than the injecting vantage point, so
that the echo reply travels the reverse path toward the spoofed source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addr import Address
from repro.net.options import RecordRouteOption, TimestampOption


class ProbeKind(enum.Enum):
    """Wire-level probe categories, matching Table 4's packet types."""

    PING = "ping"
    RECORD_ROUTE = "rr"
    SPOOFED_RECORD_ROUTE = "spoof-rr"
    TIMESTAMP = "ts"
    SPOOFED_TIMESTAMP = "spoof-ts"
    TRACEROUTE = "traceroute"
    SNMP = "snmp"


@dataclass
class Probe:
    """An ICMP echo request (optionally TTL-limited, optionally spoofed).

    Attributes:
        src: source address written in the IP header. When spoofing,
            this is the address of the system's source S, not of the
            vantage point that injects the packet.
        dst: destination address.
        kind: probe category for budget accounting.
        injected_at: address of the host that actually transmits the
            packet (equals ``src`` unless spoofing).
        ttl: IP TTL; ``None`` means the OS default (no traceroute).
        flow_id: Paris-traceroute flow identifier. Load-balancers hash
            this for per-flow balancing of option-less packets.
        record_route: attached record-route option, if any.
        timestamp: attached tsprespec option, if any.
    """

    src: Address
    dst: Address
    kind: ProbeKind = ProbeKind.PING
    injected_at: Optional[Address] = None
    ttl: Optional[int] = None
    flow_id: int = 0
    record_route: Optional[RecordRouteOption] = None
    timestamp: Optional[TimestampOption] = None

    def __post_init__(self) -> None:
        if self.injected_at is None:
            self.injected_at = self.src

    @property
    def is_spoofed(self) -> bool:
        return self.injected_at != self.src

    @property
    def has_options(self) -> bool:
        return self.record_route is not None or self.timestamp is not None


@dataclass
class EchoReply:
    """Reply to an echo request that reached its destination.

    The options are the state of the probe's options *after the reply
    has been routed back to the probe's source address*, i.e. including
    stamps collected on the reverse path.
    """

    src: Address
    dst: Address
    responder: Address
    record_route: Optional[RecordRouteOption] = None
    timestamp: Optional[TimestampOption] = None
    rtt: float = 0.0
    ipid: int = 0

    @property
    def rr_slots(self):
        if self.record_route is None:
            return []
        return self.record_route.slots


@dataclass
class TracerouteReply:
    """ICMP time-exceeded from an intermediate router.

    ``hop_addr`` is None for an unresponsive hop (rendered as ``*``).
    """

    ttl: int
    hop_addr: Optional[Address]
    rtt: float = 0.0
    reached: bool = False


@dataclass
class TracerouteResult:
    """A full (forward) traceroute: ordered hops from source toward dst.

    Hops may be None (``*``). ``reached`` records whether the probe
    sequence got an echo reply from the destination itself.
    """

    src: Address
    dst: Address
    hops: list = field(default_factory=list)
    reached: bool = False
    flow_id: int = 0
    timestamp: float = 0.0

    def responsive_hops(self) -> list:
        """Return the non-``*`` hop addresses, in order."""
        return [hop for hop in self.hops if hop is not None]

    def hop_count(self) -> int:
        return len(self.hops)

    def __iter__(self):
        return iter(self.hops)
