"""Router and interface models.

A router owns a set of interfaces (its IP aliases). The measurement
artifacts the paper wrestles with all originate here:

* traceroute replies classically carry the *ingress* interface of the
  link the probe arrived on (a common but non-standard behaviour,
  Appendix B.1), while record route stamps typically carry the *egress*
  interface of the outgoing link — so the two views of the same router
  rarely share an address, motivating the RR-atlas technique (§4.2);
* routers differ in RR stamping policy: some stamp loopbacks, some
  stamp private addresses, some do not stamp at all (Appendix C);
* a subset of routers answer unsolicited SNMPv3 with a stable engine
  identifier, giving reliable alias ground truth (§4.4);
* routers share a monotonically increasing IP-ID counter across their
  interfaces, which is what MIDAR-style alias resolution measures.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.addr import Address


class InterfaceRole(enum.Enum):
    """What an interface is attached to."""

    LOOPBACK = "loopback"
    LINK = "link"  # numbered /30 point-to-point interface
    LAN = "lan"  # interface into an edge (host) subnet


class RRStampPolicy(enum.Enum):
    """How a router fills record-route slots (Appendix C artifacts)."""

    EGRESS = "egress"  # stamp the outgoing interface (classic)
    INGRESS = "ingress"  # stamp the incoming interface
    LOOPBACK = "loopback"  # always stamp the loopback
    PRIVATE = "private"  # stamp an RFC1918 management address
    NO_STAMP = "no-stamp"  # forward without stamping


@dataclass
class Interface:
    """A router interface: one IP alias of the router."""

    addr: Address
    role: InterfaceRole
    router_id: int
    neighbor_router_id: Optional[int] = None

    def __hash__(self) -> int:
        return hash(self.addr)


_router_ids = itertools.count()


@dataclass
class Router:
    """A router with its aliases and measurement-relevant behaviour.

    Attributes:
        router_id: unique integer identity (the alias ground truth).
        asn: the AS that owns and operates this router. Border routers
            are owned by one side of an interdomain link even though
            interfaces on the link may be numbered from either side's
            space — the root of the IP-to-AS mapping difficulty (B.2).
        interfaces: all interfaces, keyed by address.
        loopback: the loopback address.
        rr_policy: record-route stamping behaviour.
        responds_to_ping / responds_to_options / responds_to_ttl:
            responsiveness knobs; options-responsiveness is the paper's
            78% figure (Appendix F).
        snmpv3_responsive: answers unsolicited SNMPv3 with engine id.
        supports_timestamp: honours tsprespec options.
        ipid_shared: shares one IP-ID counter across interfaces, making
            the router resolvable by MIDAR-style probing.
        is_load_balancer: installs multiple equal next hops and splits
            flows across them (per packet for option-carrying packets).
        private_addr: management address used by PRIVATE stampers.
    """

    router_id: int = field(default_factory=lambda: next(_router_ids))
    asn: int = 0
    interfaces: Dict[Address, Interface] = field(default_factory=dict)
    loopback: Optional[Address] = None
    rr_policy: RRStampPolicy = RRStampPolicy.EGRESS
    responds_to_ping: bool = True
    responds_to_options: bool = True
    responds_to_ttl: bool = True
    snmpv3_responsive: bool = False
    supports_timestamp: bool = True
    ipid_shared: bool = True
    is_load_balancer: bool = False
    dbr_violator: bool = False
    dbr_as_violator: bool = False
    private_addr: Optional[Address] = None
    _ipid: int = 0

    def add_interface(
        self,
        addr: Address,
        role: InterfaceRole,
        neighbor_router_id: Optional[int] = None,
    ) -> Interface:
        """Attach a new interface and return it."""
        iface = Interface(addr, role, self.router_id, neighbor_router_id)
        self.interfaces[addr] = iface
        if role is InterfaceRole.LOOPBACK:
            self.loopback = addr
        return iface

    def addresses(self) -> List[Address]:
        """Return every public alias of this router."""
        return list(self.interfaces)

    def owns(self, addr: Address) -> bool:
        """True if *addr* is an alias of this router."""
        return addr in self.interfaces or addr == self.private_addr

    def rr_stamp_address(
        self,
        ingress_addr: Optional[Address],
        egress_addr: Optional[Address],
    ) -> Optional[Address]:
        """Choose the address to write into a record-route slot.

        Returns None when the router's policy is not to stamp (or the
        policy's preferred address does not exist, in which case we
        fall back in the order egress, ingress, loopback).
        """
        if self.rr_policy is RRStampPolicy.NO_STAMP:
            return None
        if self.rr_policy is RRStampPolicy.PRIVATE:
            return self.private_addr or self.loopback
        if self.rr_policy is RRStampPolicy.LOOPBACK:
            return self.loopback or egress_addr or ingress_addr
        if self.rr_policy is RRStampPolicy.INGRESS:
            return ingress_addr or egress_addr or self.loopback
        return egress_addr or ingress_addr or self.loopback

    def traceroute_reply_address(
        self, ingress_addr: Optional[Address]
    ) -> Optional[Address]:
        """Address written in a time-exceeded reply (the ingress)."""
        if not self.responds_to_ttl:
            return None
        return ingress_addr or self.loopback

    def next_ipid(self) -> int:
        """Advance and return the shared IP-ID counter."""
        self._ipid = (self._ipid + 1) & 0xFFFF
        return self._ipid

    def snmpv3_engine_id(self) -> Optional[str]:
        """Stable engine identifier, or None if not SNMPv3-responsive."""
        if not self.snmpv3_responsive:
            return None
        return f"engine-{self.router_id:08x}"

    def __hash__(self) -> int:
        return self.router_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Router):
            return NotImplemented
        return self.router_id == other.router_id
