"""A PEERING-like anycast testbed over the simulator.

PEERING lets researchers announce real prefixes from multiple
university/IXP sites and manipulate the announcements (§6.1). Here, a
set of site ASes anycast one prefix; the deployment object owns the
announcement spec and re-announces modified versions (poisoning,
no-export, prepend), invalidating the simulator's routing caches the
way BGP reconverges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.net.addr import Address, Prefix
from repro.sim.network import Internet
from repro.topology.policy import AnnouncementSpec, Origin

#: Virtual-time cost of BGP convergence + route-flap-damping safety
#: after each announcement change (paper: 15 minutes).
CONVERGENCE_SECONDS = 15 * 60.0


@dataclass
class AnycastDeployment:
    """One anycast prefix announced from several sites."""

    prefix: Prefix
    source: Address  # the revtr source living on the prefix
    site_asns: Tuple[int, ...]
    poisoned: FrozenSet[int] = frozenset()
    no_export: FrozenSet[Tuple[int, int]] = frozenset()
    prepends: Dict[int, int] = field(default_factory=dict)

    def spec(self) -> AnnouncementSpec:
        origins = tuple(
            Origin(asn, prepend=self.prepends.get(asn, 0))
            for asn in sorted(self.site_asns)
        )
        return AnnouncementSpec(
            origins=origins,
            poisoned=self.poisoned,
            no_export=self.no_export,
        )


class PeeringTestbed:
    """Manages anycast deployments over the simulated Internet."""

    def __init__(self, internet: Internet) -> None:
        self.internet = internet
        self.deployments: Dict[Prefix, AnycastDeployment] = {}

    def deploy(
        self,
        source: Address,
        site_asns: Sequence[int],
    ) -> AnycastDeployment:
        """Anycast the prefix containing *source* from *site_asns*.

        Each site AS must have at least one router; the site's delivery
        anchor is its lowest-id router (the PEERING mux).
        """
        prefix = self.internet.prefix_table.lookup_prefix(source)
        if prefix is None:
            raise ValueError(f"{source} is not in an announced prefix")
        host = self.internet.hosts.get(source)
        if host is None:
            raise ValueError(f"{source} is not a host")
        sites = tuple(sorted(set(site_asns) | {host.asn}))
        deployment = AnycastDeployment(
            prefix=prefix, source=source, site_asns=sites
        )
        self.deployments[prefix] = deployment
        self._announce(deployment)
        return deployment

    def _anchor_for(self, asn: int) -> int:
        routers = self.internet.routers_by_as.get(asn)
        if not routers:
            raise ValueError(f"AS{asn} has no routers")
        return min(routers)

    def _announce(self, deployment: AnycastDeployment) -> None:
        spec = deployment.spec()
        self.internet.announcements[deployment.prefix] = spec
        self.internet.anycast_anchors[deployment.prefix] = {
            asn: self._anchor_for(asn) for asn in deployment.site_asns
        }
        self.internet.invalidate_routing()

    # ------------------------------------------------------------------
    # Announcement manipulation
    # ------------------------------------------------------------------

    def reannounce(
        self,
        deployment: AnycastDeployment,
        poisoned: Optional[FrozenSet[int]] = None,
        no_export: Optional[FrozenSet[Tuple[int, int]]] = None,
        prepends: Optional[Dict[int, int]] = None,
        clock=None,
    ) -> AnycastDeployment:
        """Apply announcement changes and let routing reconverge.

        Charges the 15-minute convergence delay if a clock is given.
        """
        if poisoned is not None:
            deployment.poisoned = poisoned
        if no_export is not None:
            deployment.no_export = no_export
        if prepends is not None:
            deployment.prepends = dict(prepends)
        self._announce(deployment)
        if clock is not None:
            clock.advance(CONVERGENCE_SECONDS)
        return deployment

    def withdraw(self, deployment: AnycastDeployment) -> None:
        """Remove the anycast announcement (back to unicast)."""
        self.internet.announcements.pop(deployment.prefix, None)
        self.internet.anycast_anchors.pop(deployment.prefix, None)
        self.internet.invalidate_routing()
        self.deployments.pop(deployment.prefix, None)

    def catchment_of(
        self, deployment: AnycastDeployment, asn: int
    ) -> Optional[int]:
        """Ground-truth catchment of *asn* (control-plane view)."""
        return self.internet.policy.catchment(asn, deployment.spec())
