"""Traffic engineering with reverse traceroutes (Section 6.1).

A PEERING-like testbed: a prefix anycast from several sites, with BGP
poisoning, selective no-export communities, and prepending as the
control knobs. Reverse traceroutes measured toward the anycast source
reveal each client network's catchment and the transit it arrives
through — the visibility the paper's case study exercises.
"""

from repro.te.peering import AnycastDeployment, PeeringTestbed
from repro.te.engineering import CatchmentReport, TrafficEngineer

__all__ = [
    "AnycastDeployment",
    "PeeringTestbed",
    "CatchmentReport",
    "TrafficEngineer",
]
