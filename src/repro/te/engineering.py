"""Reverse-traceroute-driven traffic engineering (§6.1).

The TrafficEngineer closes the paper's loop: measure reverse routes
from monitoring targets toward the anycast source, summarise which
site and which transit each client arrives through, apply an
announcement change (poison / no-export / prepend), wait out
convergence, and measure again. The Fig. 7 case study — shifting
suboptimal transit routes toward a closer site and rebalancing
providers — is the `exp_traffic_eng` experiment built on this class.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asmap.ip2as import IPToASMapper
from repro.core.result import ReverseTracerouteResult, RevtrStatus
from repro.core.revtr import RevtrEngine
from repro.net.addr import Address
from repro.probing.prober import Prober
from repro.te.peering import AnycastDeployment, PeeringTestbed


@dataclass
class CatchmentReport:
    """One measurement round: who lands where, through what."""

    #: destination -> catchment site AS (None when unmeasured)
    site_of: Dict[Address, Optional[int]] = field(default_factory=dict)
    #: destination -> transit ASes on its reverse path
    transits_of: Dict[Address, Tuple[int, ...]] = field(
        default_factory=dict
    )
    #: destination -> RTT to the anycast source (seconds)
    rtt_of: Dict[Address, float] = field(default_factory=dict)
    results: List[ReverseTracerouteResult] = field(default_factory=list)

    def site_shares(self) -> Dict[int, float]:
        """Fraction of measured destinations landing at each site."""
        landed = [s for s in self.site_of.values() if s is not None]
        counts = Counter(landed)
        total = len(landed)
        if total == 0:
            return {}
        return {site: n / total for site, n in counts.items()}

    def share_through(self, transit_asn: int) -> float:
        """Fraction of measured paths traversing *transit_asn*."""
        if not self.transits_of:
            return 0.0
        hits = sum(
            1
            for transits in self.transits_of.values()
            if transit_asn in transits
        )
        return hits / len(self.transits_of)

    def destinations_through(
        self, transit_asn: int
    ) -> List[Address]:
        return [
            dst
            for dst, transits in self.transits_of.items()
            if transit_asn in transits
        ]

    def mean_rtt(self, dsts: Optional[Sequence[Address]] = None) -> float:
        values = [
            rtt
            for dst, rtt in self.rtt_of.items()
            if dsts is None or dst in set(dsts)
        ]
        if not values:
            return float("nan")
        return sum(values) / len(values)


class TrafficEngineer:
    """Measure → reconfigure → re-measure, with revtr visibility."""

    def __init__(
        self,
        testbed: PeeringTestbed,
        engine: RevtrEngine,
        prober: Prober,
        ip2as: IPToASMapper,
    ) -> None:
        self.testbed = testbed
        self.engine = engine
        self.prober = prober
        self.ip2as = ip2as

    def measure_round(
        self,
        deployment: AnycastDeployment,
        destinations: Sequence[Address],
    ) -> CatchmentReport:
        """One round of reverse traceroutes toward the anycast source."""
        report = CatchmentReport()
        site_set = set(deployment.site_asns)
        for dst in destinations:
            result = self.engine.measure(dst)
            report.results.append(result)
            if result.status is not RevtrStatus.COMPLETE:
                report.site_of[dst] = None
                continue
            # Drop the final hop: the source address itself maps to the
            # prefix's nominal origin, not the actual catchment site.
            # The preceding hops are the catchment site's own routers.
            as_path = self.ip2as.collapsed_as_path(
                result.addresses()[:-1]
            )
            site = next(
                (asn for asn in reversed(as_path) if asn in site_set),
                None,
            )
            report.site_of[dst] = site
            dst_asn = self.ip2as.asn(dst)
            report.transits_of[dst] = tuple(
                asn
                for asn in as_path
                if asn not in site_set and asn != dst_asn
            )
            reply = self.prober.ping(deployment.source, dst)
            if reply is not None:
                report.rtt_of[dst] = reply.rtt
        return report

    # ------------------------------------------------------------------
    # The §6.1 knobs
    # ------------------------------------------------------------------

    def poison(
        self, deployment: AnycastDeployment, asn: int
    ) -> AnycastDeployment:
        """Poison *asn* on the announcement (Fig. 7 left)."""
        return self.testbed.reannounce(
            deployment,
            poisoned=deployment.poisoned | {asn},
            clock=self.prober.clock,
        )

    def no_export(
        self, deployment: AnycastDeployment, via: int, neighbor: int
    ) -> AnycastDeployment:
        """Provider no-export community (Fig. 7 right): tell *via* not
        to export the prefix to *neighbor*."""
        return self.testbed.reannounce(
            deployment,
            no_export=deployment.no_export | {(via, neighbor)},
            clock=self.prober.clock,
        )

    def prepend(
        self, deployment: AnycastDeployment, site_asn: int, count: int
    ) -> AnycastDeployment:
        prepends = dict(deployment.prepends)
        prepends[site_asn] = count
        return self.testbed.reannounce(
            deployment, prepends=prepends, clock=self.prober.clock
        )
