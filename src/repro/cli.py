"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``measure`` — build a simulated Internet and run reverse traceroutes
  toward an M-Lab-like source, printing hop-by-hop results
  (``--json`` for machine-readable output with per-measurement trace
  trees, ``--metrics-out FILE`` to save the metrics snapshot);
* ``asymmetry`` — run a miniature §6.2 bidirectional study;
* ``te`` — run the §6.1 traffic-engineering loop;
* ``survey`` — the Appendix F record-route responsiveness survey
  (``--json`` for machine-readable output);
* ``stats`` — render a Prometheus-style metrics exposition, either
  from a saved snapshot (``--from``) or by running a fresh workload
  (``--slo`` for the event/histogram-derived SLO rollup instead);
* ``explain`` — reconstruct one measurement's decision path from the
  flight recorder: which techniques ran, which VPs were probed, where
  the probe budget went (from a ``--events`` JSONL export or a fresh
  instrumented run);
* ``events`` — dump or tail the structured event log (``--from`` for
  a JSONL export incl. rotated ``.gz`` segments, ``--follow`` to
  poll a live file, ``--json`` for raw records);
* ``atlas`` — the offline atlas pipeline: ``build`` both atlases for
  a source over shard lanes with probe dedup, ``save`` a versioned
  snapshot, ``load`` to warm-start (optionally running measurements
  off the loaded atlases);
* ``serve`` — demo the request scheduler: several users with
  different parallel limits submit a burst of requests which are
  multiplexed over ``--parallel`` lanes with admission control
  (``--json`` for the machine-readable report);
* ``chaos`` — run a measurement workload under deterministic fault
  injection (packet loss, ICMP rate limiting, VP outages, spoofed
  black-holes) and report how gracefully the system degraded
  (``--preset`` scenarios seeded by ``--seed``; ``--plan`` replays a
  saved JSON plan bit-for-bit);
* ``health`` — one-command diagnosis: run a (faulted) workload with
  the telemetry sampler on, evaluate windowed health rules, and
  report typed findings each citing the flight-recorder events and
  metric windows behind it (``--json`` for machines);
* ``top`` — live refreshing terminal dashboard (rates with
  sparklines, SLO rollup, health findings) over a background
  measurement workload;
* ``benchdiff`` — compare two or more ``BENCH_*.json`` artifacts,
  gating regressions beyond ``--threshold`` percent (non-zero exit);
  wall-clock keys are reported but never gated.

``stats --watch SECONDS`` re-renders the stats/SLO view in place
while a workload runs, and ``serve --http PORT`` exposes
``/metrics``, ``/metrics.json``, ``/health`` and ``/timeseries``
over HTTP while the scheduler demo executes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import Scenario
from repro.obs import Instrumentation
from repro.topology import TopologyConfig


def _scenario(
    args: argparse.Namespace, instrumentation=None
) -> Scenario:
    config = {
        "tiny": TopologyConfig.tiny,
        "small": TopologyConfig.small,
        "evaluation": TopologyConfig.evaluation,
        "large": TopologyConfig.large,
    }[args.scale](seed=args.seed)
    scenario = Scenario(
        config=config,
        seed=args.seed,
        atlas_size=args.atlas_size,
        instrumentation=instrumentation,
    )
    if getattr(args, "no_fastpath", False):
        scenario.internet.enable_fastpath(False)
    return scenario


def _write_metrics(instr: Instrumentation, path: Optional[str]) -> None:
    if not path:
        return
    with open(path, "w") as fh:
        json.dump(instr.registry.snapshot(), fh, indent=2)


def _write_events(
    instr: Instrumentation,
    path: Optional[str],
    rotate_bytes: Optional[int] = None,
) -> None:
    """Drain the flight recorder to a JSONL file (optional rotation)."""
    if not path or instr.events is None:
        return
    from repro.obs.eventio import JsonlEventWriter

    with JsonlEventWriter(path, rotate_bytes=rotate_bytes) as writer:
        writer.drain(instr.events)


def _format_event_doc(doc: dict) -> str:
    """One human-readable line per event record."""
    clock = (
        f"sim={doc['sim']:10.3f}" if "sim" in doc
        else f"wall={doc.get('wall', 0.0):.3f}"
    )
    mid = doc.get("mid") or "-"
    fields = doc.get("fields") or {}
    payload = " ".join(f"{k}={fields[k]}" for k in sorted(fields))
    return (
        f"{doc.get('seq', 0):6d}  {clock}  {mid:<9s} "
        f"{doc.get('kind', '?'):<18s} {payload}"
    )


def _amortization_config(scenario, args):
    """Engine config honouring --segment-cache/--coalesce, or None
    when neither flag is set (so the cached default engine and its
    byte-identical behaviour are untouched)."""
    segment_cache = getattr(args, "segment_cache", False)
    coalesce = getattr(args, "coalesce", False)
    if not segment_cache and not coalesce:
        return None
    config = scenario.engine_config(args.variant)
    config.segment_cache = segment_cache
    config.coalesce_batches = coalesce
    return config


def _cmd_measure(args: argparse.Namespace) -> int:
    instr = Instrumentation()
    scenario = _scenario(args, instrumentation=instr)
    source = scenario.sources()[args.source_index]
    engine = scenario.engine(
        source,
        args.variant,
        config=_amortization_config(scenario, args),
    )
    destinations = (
        [args.dst]
        if args.dst
        else scenario.responsive_destinations(
            args.count, options_only=True
        )
    )
    measurements = []
    # With --coalesce the whole stream runs as one measure_many group;
    # per-measurement trace trees are only attributable in the
    # sequential path.
    coalesced = (
        engine.measure_many(destinations) if args.coalesce else None
    )
    for index, dst in enumerate(destinations):
        result = (
            coalesced[index]
            if coalesced is not None
            else engine.measure(dst)
        )
        if args.json:
            doc = result.to_dict()
            if coalesced is None:
                trace = instr.tracer.last_trace
                if trace is not None:
                    doc["trace"] = trace.to_dict()
            measurements.append(doc)
            continue
        print(result.render())
        print(
            f"  AS path: "
            f"{scenario.ip2as.collapsed_as_path(result.addresses())}"
        )
        print(f"  probes: {result.probe_counts}")
        print()
    if args.json:
        print(
            json.dumps(
                {
                    "measurements": measurements,
                    "metrics": instr.registry.snapshot(),
                },
                indent=2,
            )
        )
    _write_metrics(instr, args.metrics_out)
    _write_events(instr, args.events_out)
    return 0


def _cmd_asymmetry(args: argparse.Namespace) -> int:
    from repro.experiments import exp_asymmetry

    scenario = _scenario(args)
    campaign = exp_asymmetry.run(
        scenario, n_destinations=args.count, n_sources=3
    )
    print(exp_asymmetry.format_fig8a(campaign))
    print()
    print(exp_asymmetry.format_fig8b_table7(campaign))
    return 0


def _cmd_te(args: argparse.Namespace) -> int:
    from repro.experiments import exp_traffic_eng

    scenario = _scenario(args)
    result = exp_traffic_eng.run(scenario, n_monitors=args.count)
    print(exp_traffic_eng.format_report(result))
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.experiments import exp_rr_responsiveness

    result = exp_rr_responsiveness.run(seed=args.seed)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
        return 0
    print(exp_rr_responsiveness.format_table6(result))
    print()
    print(exp_rr_responsiveness.format_fig11(result))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.exposition import render_text

    if args.watch is not None and args.from_file:
        print(
            "error: --watch re-renders a live workload; it cannot be "
            "combined with --from FILE",
            file=sys.stderr,
        )
        return 2
    if args.watch is not None:
        return _stats_watch(args)
    if args.from_file:
        try:
            with open(args.from_file) as fh:
                snapshot = json.load(fh)
        except OSError as exc:
            print(f"error: cannot read {args.from_file}: {exc.strerror}",
                  file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {args.from_file} is not valid JSON: {exc}",
                  file=sys.stderr)
            return 2
        # Accept both a bare registry snapshot (--metrics-out) and a
        # full ``measure --json`` document.
        if "metrics" in snapshot and "series" not in next(
            iter(snapshot.values()), {}
        ):
            snapshot = snapshot["metrics"]
        if args.slo:
            from repro.obs.slo import format_slo, slo_summary

            print(format_slo(slo_summary(snapshot)))
        else:
            print(render_text(snapshot), end="")
        return 0

    # No snapshot given: run a fresh instrumented workload and report.
    instr = Instrumentation()
    scenario = _scenario(args, instrumentation=instr)
    source = scenario.sources()[args.source_index]
    engine = scenario.engine(
        source,
        args.variant,
        config=_amortization_config(scenario, args),
    )
    dsts = scenario.responsive_destinations(
        args.count, options_only=True
    )
    if args.coalesce:
        engine.measure_many(dsts)
    else:
        for dst in dsts:
            engine.measure(dst)
    if args.slo:
        from repro.obs.slo import format_slo, slo_summary

        print(format_slo(slo_summary(instr.registry.snapshot())))
    else:
        print(instr.registry.render_prometheus(), end="")
    return 0


def _stats_watch(args: argparse.Namespace) -> int:
    """``stats --watch``: re-render the stats/SLO view in place while
    a workload runs, sharing the ``repro top`` renderer machinery."""
    import threading

    from repro.obs.dashboard import live_view, render_top
    from repro.obs.exposition import render_text
    from repro.obs.timeseries import install_sampler

    instr = Instrumentation()
    sampler = install_sampler(instr, sim_interval=args.sample_interval)
    scenario = _scenario(args, instrumentation=instr)
    source = scenario.sources()[args.source_index]
    engine = scenario.engine(
        source,
        args.variant,
        config=_amortization_config(scenario, args),
    )
    dsts = scenario.responsive_destinations(
        args.count, options_only=True
    )
    stop = threading.Event()

    def workload() -> None:
        for dst in dsts:
            if stop.is_set():
                return
            engine.measure(dst)

    worker = threading.Thread(
        target=workload, name="repro-stats-workload", daemon=True
    )
    worker.start()

    def frame():
        sampler.sample()
        snapshot = instr.registry.snapshot()
        if args.slo:
            latest = sampler.latest
            text = render_top(
                snapshot,
                sampler=sampler,
                title="repro stats --slo",
                now_sim=latest.sim if latest is not None else None,
            )
        else:
            text = render_text(snapshot).rstrip("\n")
        return text, not worker.is_alive()

    try:
        live_view(frame, args.watch, max_frames=args.frames)
    finally:
        stop.set()
        worker.join(timeout=10)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.provenance import ProvenanceLedger

    if args.events_file:
        from repro.obs.eventio import read_events

        try:
            events = read_events(args.events_file)
        except FileNotFoundError:
            print(
                f"error: no event log at {args.events_file}",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        # No export given: run a fresh instrumented measurement (or
        # --count of them) and explain from the live flight recorder.
        instr = Instrumentation()
        scenario = _scenario(args, instrumentation=instr)
        source = scenario.sources()[args.source_index]
        engine = scenario.engine(source, args.variant)
        destinations = (
            [args.dst]
            if args.dst
            else scenario.responsive_destinations(
                args.count, options_only=True
            )
        )
        for dst in destinations:
            engine.measure(dst)
        events = instr.events.events()

    ordered_mids: List[str] = []
    for event in events:
        if event.mid is not None and event.mid not in ordered_mids:
            ordered_mids.append(event.mid)
    if not ordered_mids:
        print("error: event log holds no measurements", file=sys.stderr)
        return 2
    if args.mid == "all":
        selected = ordered_mids
    elif args.mid == "last":
        selected = [ordered_mids[-1]]
    elif args.mid in ordered_mids:
        selected = [args.mid]
    else:
        known = ", ".join(ordered_mids[-8:])
        print(
            f"error: no events for measurement {args.mid!r} "
            f"(recent: {known})",
            file=sys.stderr,
        )
        return 2

    documents = []
    for index, mid in enumerate(selected):
        ledger = ProvenanceLedger.from_events(events, mid)
        if args.json:
            documents.append(ledger.summary())
            continue
        if index:
            print()
        print(ledger.explain())
    if args.json:
        print(
            json.dumps(
                documents[0] if len(documents) == 1 else documents,
                indent=2,
                sort_keys=True,
            )
        )
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    if args.follow:
        if not args.from_file:
            print(
                "error: --follow needs --from FILE (a live JSONL log)",
                file=sys.stderr,
            )
            return 2
        from repro.obs.eventio import follow_jsonl

        try:
            for doc in follow_jsonl(
                args.from_file, max_seconds=args.max_seconds
            ):
                if args.kind and doc.get("kind") != args.kind:
                    continue
                if args.mid and doc.get("mid") != args.mid:
                    continue
                print(
                    json.dumps(doc, sort_keys=True)
                    if args.json
                    else _format_event_doc(doc)
                )
        except KeyboardInterrupt:
            pass
        return 0

    if args.from_file:
        from repro.obs.eventio import read_events

        try:
            events = read_events(args.from_file)
        except FileNotFoundError:
            print(
                f"error: no event log at {args.from_file}",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        # No file: run a fresh instrumented workload and dump its log.
        instr = Instrumentation()
        scenario = _scenario(args, instrumentation=instr)
        source = scenario.sources()[args.source_index]
        engine = scenario.engine(source, args.variant)
        for dst in scenario.responsive_destinations(
            args.count, options_only=True
        ):
            engine.measure(dst)
        events = instr.events.events()

    if args.kind:
        events = [e for e in events if e.kind == args.kind]
    if args.mid:
        events = [e for e in events if e.mid == args.mid]
    if args.tail:
        events = events[-args.tail:]
    for event in events:
        doc = event.to_dict()
        print(
            json.dumps(doc, sort_keys=True)
            if args.json
            else _format_event_doc(doc)
        )
    return 0


def _cmd_atlas(args: argparse.Namespace) -> int:
    from repro.core.atlas_pipeline import SnapshotError

    instr = Instrumentation()
    scenario = _scenario(args, instrumentation=instr)
    source = scenario.sources()[args.source_index]

    if args.atlas_command == "load":
        try:
            bundle = scenario.load_atlases(source, args.path)
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        doc = {
            "source": source,
            "path": args.path,
            "traceroutes": len(bundle.atlas),
            "rr_aliases": (
                len(bundle.rr_atlas)
                if bundle.rr_atlas is not None
                else 0
            ),
            "measurements": [],
        }
        if args.measure:
            engine = scenario.engine(source, "revtr2.0")
            for dst in scenario.responsive_destinations(
                args.measure, options_only=True
            ):
                result = engine.measure(dst)
                doc["measurements"].append(result.to_dict())
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(
                f"loaded atlases for {source} from {args.path}: "
                f"{doc['traceroutes']} traceroutes, "
                f"{doc['rr_aliases']} RR aliases"
            )
            for measured in doc["measurements"]:
                print(
                    f"  revtr {measured['dst']} -> {source}: "
                    f"{measured['status']}, "
                    f"{len(measured['hops'])} hops"
                )
        _write_metrics(instr, args.metrics_out)
        return 0

    # build / save: cold-build through the pipeline, optionally
    # snapshotting the result for later warm starts.
    pipeline = scenario.atlas_pipeline(
        shards=args.shards,
        dedup=not args.no_dedup,
        threaded=args.threaded,
    )
    atlas, rr_atlas = pipeline.bootstrap(
        source,
        scenario.bundle_rng(source),
        size=args.atlas_size,
        max_size=args.atlas_size,
    )
    scenario.adopt_atlases(source, atlas, rr_atlas)
    out = getattr(args, "out", None)
    if out:
        scenario.save_atlases(source, out)
    doc = {
        "source": source,
        "shards": args.shards,
        "dedup": not args.no_dedup,
        "traceroutes": len(atlas),
        "rr_aliases": len(rr_atlas),
        "stages": [report.as_dict() for report in pipeline.reports],
        "snapshot": out,
    }
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"atlas pipeline for {source}: {len(atlas)} traceroutes, "
            f"{len(rr_atlas)} RR aliases "
            f"({args.shards} shards, dedup "
            f"{'off' if args.no_dedup else 'on'})"
        )
        for report in pipeline.reports:
            print(
                f"  {report.stage:<10s} {report.tasks:4d} tasks, "
                f"serial {report.serial_seconds:8.2f} vs -> "
                f"makespan {report.makespan_seconds:8.2f} vs "
                f"({report.speedup:.2f}x), "
                f"probes {report.probes_sent}"
                + (
                    f" (+{report.probes_deduped} deduped)"
                    if report.probes_deduped
                    else ""
                )
            )
        if out:
            print(f"  snapshot saved to {out}")
    _write_metrics(instr, args.metrics_out)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.revtr import EngineConfig
    from repro.service import (
        RevtrService,
        SchedulerConfig,
        SourceRegistry,
    )

    instr = Instrumentation()
    if args.http is not None or args.timeseries_out:
        from repro.obs.timeseries import install_sampler

        install_sampler(instr, sim_interval=args.sample_interval)
    scenario = _scenario(args, instrumentation=instr)
    registry = SourceRegistry(
        scenario.internet,
        scenario.background_prober,
        scenario.atlas_vp_addrs,
        scenario.spoofer_addrs,
        atlas_size=args.atlas_size,
        seed=args.seed,
    )
    service = RevtrService(
        prober=scenario.online_prober,
        registry=registry,
        selector=scenario.selector("revtr2.0"),
        ip2as=scenario.ip2as,
        relationships=scenario.relationships,
        resolver=scenario.resolver,
        engine_config=EngineConfig(
            segment_cache=args.segment_cache,
            coalesce_batches=args.coalesce,
        ),
        instrumentation=instr,
    )
    # A demo population: per-user parallel caps cycle 1, 2, 4, ...
    users = [
        service.add_user(
            f"user{i}",
            max_parallel=min(2**i, 8),
            max_per_day=args.requests * 4,
        )
        for i in range(args.users)
    ]
    source = scenario.sources()[args.source_index]
    service.add_source(users[0].api_key, source)
    destinations = scenario.responsive_destinations(
        args.requests, options_only=True
    )
    scheduler = service.scheduler(
        SchedulerConfig(
            parallelism=args.parallel,
            max_queue_per_user=args.queue,
            deadline=args.deadline,
            max_retries=args.retries,
            coalesce=args.coalesce,
        )
    )
    http_server = None
    if args.http is not None:
        from repro.obs.httpd import ObsHTTPServer

        http_server = ObsHTTPServer(
            instr, sampler=instr.sampler, port=args.http
        ).start()
        print(
            f"obs endpoint: {http_server.url} "
            f"(/metrics, /metrics.json, /health, /timeseries)",
            file=sys.stderr,
        )
    for user in users:
        for dst in destinations:
            scheduler.submit(user.api_key, dst, source)
    report = (
        scheduler.run_threaded()
        if args.threaded
        else scheduler.run()
    )
    doc = report.as_dict()
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"served {doc['completed']}/{doc['submitted']} requests "
            f"over {args.parallel} lanes "
            f"({'threads' if args.threaded else 'virtual clock'})"
        )
        print(
            f"  makespan:   {doc['makespan_virtual_seconds']:.1f} "
            f"virtual seconds"
        )
        print(
            f"  throughput: {doc['throughput_per_virtual_second']:.3f} "
            f"requests / virtual second"
        )
        print(f"  rejected:   {doc['rejected'] or 'none'}")
        print(f"  retries:    {doc['retries']}")
        for name, peak in doc["peak_inflight"].items():
            cap = service.users.get(name).max_parallel
            print(f"  {name}: peak {peak} in flight (cap {cap})")
    if instr.sampler is not None:
        instr.sampler.sample()
        if args.timeseries_out:
            with open(args.timeseries_out, "w") as fh:
                fh.write(instr.sampler.export_json())
                fh.write("\n")
    if http_server is not None:
        if args.http_hold > 0:
            import time as _time

            print(
                f"holding the obs endpoint open for "
                f"{args.http_hold:.0f}s (ctrl-C to stop) ...",
                file=sys.stderr,
            )
            try:
                _time.sleep(args.http_hold)
            except KeyboardInterrupt:
                pass
        http_server.stop()
    _write_metrics(instr, args.metrics_out)
    _write_events(instr, args.events_out, rotate_bytes=args.events_rotate)
    return 0


def _fault_workload(args: argparse.Namespace, instr: Instrumentation):
    """Build and run the faulted scheduler workload shared by
    ``repro chaos`` and ``repro health``.

    Construction order matches the original ``repro chaos`` wiring
    exactly — the chaos plan-replay byte-identity tests depend on it.
    Returns ``(scenario, source, plan, service, tracker, injector,
    report, engine)``.
    """
    from repro.core.revtr import EngineConfig
    from repro.service import (
        RevtrService,
        SchedulerConfig,
        SourceRegistry,
    )
    from repro.sim.faults import FaultPlan, preset_plan

    scenario = _scenario(args, instrumentation=instr)
    source = scenario.sources()[args.source_index]
    if args.plan:
        with open(args.plan) as fh:
            plan = FaultPlan.from_json(fh.read())
    else:
        # The source is itself a spoof-capable host; an outage preset
        # that downed it would kill every direct probe at injection and
        # measure source death, not VP churn — keep it out of the
        # fleet the presets draw from.
        plan = preset_plan(
            args.preset,
            seed=args.seed,
            vps=[vp for vp in scenario.spoofer_addrs if vp != source],
        )

    registry = SourceRegistry(
        scenario.internet,
        scenario.background_prober,
        scenario.atlas_vp_addrs,
        scenario.spoofer_addrs,
        atlas_size=args.atlas_size,
        seed=args.seed,
    )
    service = RevtrService(
        prober=scenario.online_prober,
        registry=registry,
        selector=scenario.selector("revtr2.0"),
        ip2as=scenario.ip2as,
        relationships=scenario.relationships,
        resolver=scenario.resolver,
        engine_config=EngineConfig(
            retry_budget=args.retry_budget,
            recheck_unresponsive=True,
            segment_cache=args.segment_cache,
            coalesce_batches=args.coalesce,
        ),
        instrumentation=instr,
    )
    user = service.add_user(
        "chaos", max_parallel=4, max_per_day=args.requests * 8
    )
    # Bootstrap (atlas builds) runs fault-free; the injector and the
    # quarantine tracker arm just before the measurement workload.
    service.add_source(user.api_key, source)
    tracker = scenario.install_vp_health(
        quarantine_seconds=args.quarantine
    )
    injector = scenario.install_faults(plan)

    destinations = scenario.responsive_destinations(
        args.requests, options_only=True
    )
    scheduler = service.scheduler(
        SchedulerConfig(
            parallelism=args.parallel,
            deadline=args.deadline,
            max_retries=args.retries,
            coalesce=args.coalesce,
        )
    )
    for dst in destinations:
        scheduler.submit(user.api_key, dst, source)
    report = scheduler.run()
    engine = service._engine_for(source)
    return (
        scenario, source, plan, service, tracker, injector, report,
        engine,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    instr = Instrumentation()
    (
        scenario, source, plan, service, tracker, injector, report,
        engine,
    ) = _fault_workload(args, instr)

    if args.plan_out:
        with open(args.plan_out, "w") as fh:
            fh.write(plan.to_json())
            fh.write("\n")
    doc = {
        "preset": None if args.plan else args.preset,
        "seed": args.seed,
        "plan": plan.to_dict(),
        "faults": injector.snapshot(),
        "vp_health": tracker.snapshot(),
        "engine_retries": dict(sorted(engine.retry_counts.items())),
        "scheduler": report.as_dict(),
    }
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        label = args.plan if args.plan else f"preset '{args.preset}'"
        sched = doc["scheduler"]
        print(
            f"chaos {label}: {doc['faults']['total']} faults injected "
            f"{dict(doc['faults']['by_kind'])}"
        )
        print(
            f"  requests:    {sched['completed']}/{sched['submitted']} "
            f"completed, statuses {sched['statuses']}"
        )
        print(
            f"  degradation: {sched.get('partial_results', 0)} partial "
            f"results, retries {doc['engine_retries'] or 'none'}"
        )
        print(
            f"  vp health:   {doc['vp_health']['quarantines']} "
            f"quarantined, {doc['vp_health']['replacements']} replaced, "
            f"{doc['vp_health']['recoveries']} requalified"
        )
    _write_metrics(instr, args.metrics_out)
    _write_events(instr, args.events_out)
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.obs.health import (
        HealthConfig,
        HealthEngine,
        format_findings,
    )
    from repro.obs.timeseries import install_sampler

    instr = Instrumentation()
    sampler = install_sampler(instr, sim_interval=args.sample_interval)
    (
        scenario, source, plan, service, tracker, injector, report,
        engine,
    ) = _fault_workload(args, instr)
    # Close the last window so the final state is always in the ring.
    sampler.sample()

    config = HealthConfig()
    if args.window is not None:
        for attr in (
            "slo_window", "cache_window", "retry_window",
            "quarantine_window", "queue_window", "drops_window",
            "atlas_window", "rejection_window",
        ):
            setattr(config, attr, args.window)
    health = HealthEngine(config)
    findings = health.evaluate(sampler, instr.events)
    status = HealthEngine.status(findings)

    if args.timeseries_out:
        with open(args.timeseries_out, "w") as fh:
            fh.write(sampler.export_json())
            fh.write("\n")
    doc = {
        "preset": None if args.plan else args.preset,
        "seed": args.seed,
        "status": status,
        "findings": [finding.to_dict() for finding in findings],
        "timeseries": sampler.summary(),
        "faults": injector.snapshot(),
        "vp_health": tracker.snapshot(),
        "engine_retries": dict(sorted(engine.retry_counts.items())),
        "scheduler": report.as_dict(),
    }
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        label = args.plan if args.plan else f"preset '{args.preset}'"
        sched = doc["scheduler"]
        print(
            f"health check under {label}: "
            f"{sched['completed']}/{sched['submitted']} requests "
            f"completed, {doc['faults']['total']} faults injected, "
            f"{doc['timeseries']['samples']} telemetry samples"
        )
        print(format_findings(findings, status))
        if findings:
            print(
                "(inspect cited events with `repro events`; "
                "`repro explain <mid>` narrates one measurement)"
            )
    _write_metrics(instr, args.metrics_out)
    _write_events(instr, args.events_out)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import threading

    from repro.obs.dashboard import live_view, render_top
    from repro.obs.health import HealthEngine
    from repro.obs.timeseries import install_sampler

    instr = Instrumentation()
    sampler = install_sampler(instr, sim_interval=args.sample_interval)
    scenario = _scenario(args, instrumentation=instr)
    source = scenario.sources()[args.source_index]
    engine = scenario.engine(
        source,
        args.variant,
        config=_amortization_config(scenario, args),
    )
    pool = scenario.responsive_destinations(
        args.count, options_only=True
    )
    health = HealthEngine()
    stop = threading.Event()

    def workload() -> None:
        issued = 0
        while issued < args.requests and not stop.is_set():
            engine.measure(pool[issued % len(pool)])
            issued += 1

    worker = threading.Thread(
        target=workload, name="repro-top-workload", daemon=True
    )
    worker.start()

    def frame():
        sampler.sample()
        snapshot = instr.registry.snapshot()
        findings = health.evaluate(sampler, instr.events)
        latest = sampler.latest
        text = render_top(
            snapshot,
            sampler=sampler,
            findings=findings,
            title=f"repro top — {args.requests} requests to {source}",
            now_sim=latest.sim if latest is not None else None,
        )
        return text, not worker.is_alive()

    try:
        live_view(frame, args.interval, max_frames=args.frames)
    finally:
        stop.set()
        worker.join(timeout=10)
    return 0


def _cmd_benchdiff(args: argparse.Namespace) -> int:
    from repro.obs.benchdiff import diff_files, format_diff

    try:
        report = diff_files(
            args.base, args.candidates, threshold_pct=args.threshold
        )
    except OSError as exc:
        print(
            f"error: cannot read benchmark file: {exc}", file=sys.stderr
        )
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: invalid benchmark JSON: {exc}", file=sys.stderr)
        return 2
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_diff(report, verbose=args.verbose))
    if not report["ok"] and not args.report_only:
        return 1
    return 0


def _add_amortization_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--segment-cache",
        action="store_true",
        help="reuse reverse segments across measurements toward the "
        "same source (off by default; invalidated on routing change)",
    )
    p.add_argument(
        "--coalesce",
        action="store_true",
        help="coalesce concurrent measurements: duplicate spoofed-RR "
        "batches and ping checks collapse (off by default)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Internet Scale Reverse Traceroute — reproduction",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--scale",
        choices=("tiny", "small", "evaluation", "large"),
        default="small",
    )
    parser.add_argument("--atlas-size", type=int, default=20)
    parser.add_argument(
        "--no-fastpath",
        action="store_true",
        help="disable the forwarding fast-path caches (FIB, resolve, "
        "LPM); useful for timing comparisons and debugging",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    measure = sub.add_parser(
        "measure", help="run reverse traceroutes"
    )
    measure.add_argument("--dst", help="specific destination address")
    measure.add_argument("--count", type=int, default=3)
    measure.add_argument("--source-index", type=int, default=0)
    measure.add_argument(
        "--variant",
        default="revtr2.0",
        help="system variant (e.g. revtr2.0, revtr1.0)",
    )
    _add_amortization_flags(measure)
    measure.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: results, traces, metrics",
    )
    measure.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the metrics JSON snapshot to FILE",
    )
    measure.add_argument(
        "--events-out",
        metavar="FILE",
        help="export the flight-recorder event log to FILE (JSONL)",
    )
    measure.set_defaults(func=_cmd_measure)

    asymmetry = sub.add_parser(
        "asymmetry", help="bidirectional asymmetry study"
    )
    asymmetry.add_argument("--count", type=int, default=100)
    asymmetry.set_defaults(func=_cmd_asymmetry)

    te = sub.add_parser(
        "te", help="traffic-engineering case study"
    )
    te.add_argument("--count", type=int, default=60)
    te.set_defaults(func=_cmd_te)

    survey = sub.add_parser(
        "survey", help="record-route responsiveness survey"
    )
    survey.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (counts, fractions, CDFs)",
    )
    survey.set_defaults(func=_cmd_survey)

    stats = sub.add_parser(
        "stats",
        help="Prometheus-style metrics exposition",
    )
    stats.add_argument(
        "--from",
        dest="from_file",
        metavar="FILE",
        help="render a saved snapshot (measure --metrics-out/--json) "
        "instead of running a workload",
    )
    stats.add_argument("--count", type=int, default=3)
    stats.add_argument("--source-index", type=int, default=0)
    stats.add_argument("--variant", default="revtr2.0")
    _add_amortization_flags(stats)
    stats.add_argument(
        "--slo",
        action="store_true",
        help="print the SLO rollup (per-technique success rates, "
        "latency quantiles) instead of the raw exposition",
    )
    stats.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-render the view in place every SECONDS while a "
        "fresh workload runs (shares the `repro top` renderer)",
    )
    stats.add_argument(
        "--frames",
        type=int,
        default=0,
        metavar="N",
        help="with --watch: stop after N frames (default: until the "
        "workload finishes)",
    )
    stats.add_argument(
        "--sample-interval",
        type=float,
        default=15.0,
        metavar="SIM_SECONDS",
        help="with --watch: telemetry sampling interval on the "
        "virtual clock",
    )
    stats.set_defaults(func=_cmd_stats)

    explain = sub.add_parser(
        "explain",
        help="reconstruct one measurement's decision path from the "
        "flight recorder",
    )
    explain.add_argument(
        "mid",
        nargs="?",
        default="last",
        help="measurement id (m-000001, ...), 'last', or 'all' "
        "(default: last)",
    )
    explain.add_argument(
        "--events",
        dest="events_file",
        metavar="FILE",
        help="read a JSONL event export (measure/serve --events-out) "
        "instead of running a fresh measurement",
    )
    explain.add_argument("--dst", help="specific destination address")
    explain.add_argument("--count", type=int, default=1)
    explain.add_argument("--source-index", type=int, default=0)
    explain.add_argument("--variant", default="revtr2.0")
    explain.add_argument(
        "--json",
        action="store_true",
        help="machine-readable provenance summary instead of the "
        "narrative",
    )
    explain.set_defaults(func=_cmd_explain)

    events = sub.add_parser(
        "events",
        help="dump or tail the structured event log",
    )
    events.add_argument(
        "--from",
        dest="from_file",
        metavar="FILE",
        help="read a JSONL export (incl. rotated .gz segments) "
        "instead of running a fresh workload",
    )
    events.add_argument(
        "--follow",
        action="store_true",
        help="poll FILE for appended events (tail -f); needs --from",
    )
    events.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="stop following after this many seconds (default: never)",
    )
    events.add_argument(
        "--kind", help="only events of this kind (e.g. rr.step)"
    )
    events.add_argument(
        "--mid", help="only events for this measurement id"
    )
    events.add_argument(
        "--tail",
        type=int,
        default=0,
        metavar="N",
        help="only the last N events",
    )
    events.add_argument(
        "--json",
        action="store_true",
        help="raw JSONL records instead of formatted lines",
    )
    events.add_argument("--count", type=int, default=3)
    events.add_argument("--source-index", type=int, default=0)
    events.add_argument("--variant", default="revtr2.0")
    events.set_defaults(func=_cmd_events)

    atlas = sub.add_parser(
        "atlas",
        help="offline atlas pipeline: sharded build, snapshots",
    )
    atlas_sub = atlas.add_subparsers(dest="atlas_command", required=True)

    def _atlas_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--source-index", type=int, default=0)
        p.add_argument("--json", action="store_true")
        p.add_argument(
            "--metrics-out", metavar="FILE",
            help="write the metrics JSON snapshot to FILE",
        )

    def _atlas_build_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--shards", type=int, default=4,
            help="shard lanes for the parallel build",
        )
        p.add_argument(
            "--no-dedup", action="store_true",
            help="probe every hop occurrence instead of once per "
            "distinct address",
        )
        p.add_argument(
            "--threaded", action="store_true",
            help="measure traceroutes on a wall-clock thread pool "
            "instead of deterministic virtual lanes",
        )
        _atlas_common(p)

    atlas_build = atlas_sub.add_parser(
        "build", help="cold-build both atlases through the pipeline"
    )
    atlas_build.add_argument(
        "--out", metavar="FILE",
        help="also save a snapshot for later warm starts",
    )
    _atlas_build_args(atlas_build)
    atlas_build.set_defaults(func=_cmd_atlas)

    atlas_save = atlas_sub.add_parser(
        "save", help="cold-build and snapshot to --out"
    )
    atlas_save.add_argument("--out", metavar="FILE", required=True)
    _atlas_build_args(atlas_save)
    atlas_save.set_defaults(func=_cmd_atlas)

    atlas_load = atlas_sub.add_parser(
        "load", help="warm-start from a snapshot"
    )
    atlas_load.add_argument("--path", metavar="FILE", required=True)
    atlas_load.add_argument(
        "--measure", type=int, default=0,
        help="run this many reverse traceroutes off the loaded atlases",
    )
    _atlas_common(atlas_load)
    atlas_load.set_defaults(func=_cmd_atlas)

    serve = sub.add_parser(
        "serve",
        help="request-scheduler demo: admission control under load",
    )
    serve.add_argument(
        "--parallel", type=int, default=4,
        help="execution lanes / worker threads",
    )
    serve.add_argument("--users", type=int, default=3)
    serve.add_argument(
        "--requests", type=int, default=6,
        help="requests submitted per user",
    )
    serve.add_argument(
        "--queue", type=int, default=16,
        help="bounded per-user queue length",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help="per-request queue-wait deadline (virtual seconds)",
    )
    serve.add_argument(
        "--retries", type=int, default=0,
        help="retry budget for unresponsive destinations",
    )
    serve.add_argument(
        "--threaded", action="store_true",
        help="run on a wall-clock thread pool instead of the "
        "deterministic virtual-clock lanes",
    )
    serve.add_argument("--source-index", type=int, default=0)
    serve.add_argument("--json", action="store_true")
    serve.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the metrics JSON snapshot to FILE",
    )
    serve.add_argument(
        "--events-out",
        metavar="FILE",
        help="export the flight-recorder event log to FILE (JSONL)",
    )
    serve.add_argument(
        "--events-rotate",
        type=int,
        default=None,
        metavar="BYTES",
        help="gzip-rotate the event log once it exceeds BYTES "
        "(FILE.1.gz, FILE.2.gz, ...)",
    )
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the obs endpoint on PORT while the workload runs "
        "(0 = ephemeral): /metrics (Prometheus text), /metrics.json, "
        "/health, /timeseries",
    )
    serve.add_argument(
        "--http-hold",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the obs endpoint up for SECONDS after the workload "
        "finishes (for scraping the final state)",
    )
    serve.add_argument(
        "--sample-interval",
        type=float,
        default=15.0,
        metavar="SIM_SECONDS",
        help="telemetry sampling interval on the virtual clock "
        "(used with --http/--timeseries-out)",
    )
    serve.add_argument(
        "--timeseries-out",
        metavar="FILE",
        help="write the sampled telemetry time-series to FILE (JSON)",
    )
    _add_amortization_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection scenario with graceful degradation",
    )
    chaos.add_argument(
        "--preset",
        choices=(
            "none", "loss", "rate-limit", "vp-flap", "blackhole",
            "mixed",
        ),
        default="mixed",
        help="named fault scenario (seeded by the global --seed)",
    )
    chaos.add_argument(
        "--plan", metavar="FILE",
        help="replay a fault plan saved as JSON instead of a preset",
    )
    chaos.add_argument(
        "--plan-out", metavar="FILE",
        help="save the effective fault plan as JSON (for replay)",
    )
    chaos.add_argument(
        "--requests", type=int, default=6,
        help="measurement requests submitted under faults",
    )
    chaos.add_argument(
        "--parallel", type=int, default=2,
        help="scheduler execution lanes",
    )
    chaos.add_argument(
        "--deadline", type=float, default=None,
        help="per-request queue-wait deadline (virtual seconds)",
    )
    chaos.add_argument(
        "--retries", type=int, default=1,
        help="scheduler retry budget for unresponsive destinations",
    )
    chaos.add_argument(
        "--retry-budget", type=int, default=8,
        help="engine-level technique retries per measurement",
    )
    chaos.add_argument(
        "--quarantine", type=float, default=900.0,
        help="VP quarantine window (virtual seconds)",
    )
    chaos.add_argument("--source-index", type=int, default=0)
    chaos.add_argument("--json", action="store_true")
    chaos.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the metrics JSON snapshot to FILE",
    )
    chaos.add_argument(
        "--events-out",
        metavar="FILE",
        help="export the flight-recorder event log to FILE (JSONL)",
    )
    _add_amortization_flags(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    health = sub.add_parser(
        "health",
        help="one-command diagnosis: run a (faulted) workload, sample "
        "the telemetry time-series, report typed health findings",
    )
    health.add_argument(
        "--preset",
        choices=(
            "none", "loss", "rate-limit", "vp-flap", "blackhole",
            "mixed",
        ),
        default="mixed",
        help="named fault scenario (seeded by the global --seed); "
        "'none' checks a healthy run",
    )
    health.add_argument(
        "--plan", metavar="FILE",
        help="replay a fault plan saved as JSON instead of a preset",
    )
    health.add_argument(
        "--requests", type=int, default=8,
        help="measurement requests submitted under faults",
    )
    health.add_argument(
        "--parallel", type=int, default=2,
        help="scheduler execution lanes",
    )
    health.add_argument(
        "--deadline", type=float, default=None,
        help="per-request queue-wait deadline (virtual seconds)",
    )
    health.add_argument(
        "--retries", type=int, default=1,
        help="scheduler retry budget for unresponsive destinations",
    )
    health.add_argument(
        "--retry-budget", type=int, default=8,
        help="engine-level technique retries per measurement",
    )
    health.add_argument(
        "--quarantine", type=float, default=900.0,
        help="VP quarantine window (virtual seconds)",
    )
    health.add_argument(
        "--sample-interval", type=float, default=15.0,
        metavar="SIM_SECONDS",
        help="telemetry sampling interval on the virtual clock",
    )
    health.add_argument(
        "--window", type=float, default=None,
        metavar="SIM_SECONDS",
        help="override every detector's evaluation window "
        "(default: per-rule windows)",
    )
    health.add_argument("--source-index", type=int, default=0)
    health.add_argument("--json", action="store_true")
    health.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the metrics JSON snapshot to FILE",
    )
    health.add_argument(
        "--events-out", metavar="FILE",
        help="export the flight-recorder event log to FILE (JSONL)",
    )
    health.add_argument(
        "--timeseries-out", metavar="FILE",
        help="write the sampled telemetry time-series to FILE (JSON)",
    )
    _add_amortization_flags(health)
    health.set_defaults(func=_cmd_health)

    top = sub.add_parser(
        "top",
        help="live refreshing terminal dashboard over a running "
        "measurement workload",
    )
    top.add_argument(
        "--requests", type=int, default=30,
        help="measurements the background workload issues",
    )
    top.add_argument(
        "--count", type=int, default=10,
        help="distinct destinations cycled by the workload",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        metavar="SECONDS",
        help="wall-clock refresh interval between frames",
    )
    top.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="stop after N frames (default: until the workload "
        "finishes)",
    )
    top.add_argument(
        "--sample-interval", type=float, default=15.0,
        metavar="SIM_SECONDS",
        help="telemetry sampling interval on the virtual clock",
    )
    top.add_argument("--source-index", type=int, default=0)
    top.add_argument("--variant", default="revtr2.0")
    _add_amortization_flags(top)
    top.set_defaults(func=_cmd_top)

    benchdiff = sub.add_parser(
        "benchdiff",
        help="compare BENCH_*.json artifacts and flag regressions",
    )
    benchdiff.add_argument(
        "base", help="baseline benchmark JSON (e.g. the committed one)"
    )
    benchdiff.add_argument(
        "candidates", nargs="+",
        help="one or more candidate benchmark JSON files",
    )
    benchdiff.add_argument(
        "--threshold", type=float, default=20.0, metavar="PCT",
        help="gated regression threshold in percent (default: 20)",
    )
    benchdiff.add_argument(
        "--json", action="store_true",
        help="machine-readable diff report",
    )
    benchdiff.add_argument(
        "--verbose", action="store_true",
        help="also list ungated (wall-clock/informational) changes",
    )
    benchdiff.add_argument(
        "--report-out", metavar="FILE",
        help="also write the JSON diff report to FILE",
    )
    benchdiff.add_argument(
        "--report-only", action="store_true",
        help="always exit 0, even when gated regressions were found",
    )
    benchdiff.set_defaults(func=_cmd_benchdiff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Piped into `head` etc.; suppress the noisy traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
