"""Appendix E: violations of destination-based routing.

Reverse Traceroute assumes each router forwards by destination only.
The study: spoofed RR pings reveal adjacent reverse-hop pairs (R, R');
a spoofed RR ping *to R* (same spoofed source) should traverse R'. If
it does not — and repeated probes show a *consistent* different next
hop rather than per-packet randomness (a load balancer) — R violates
destination-based routing. A violation "affects AS-level accuracy"
when the observed next hop maps to a different AS than R'.

Paper: 6.6% of (hop, source) tuples violate; 1.3% cause an AS
deviation (1.1% affecting revtr AS accuracy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.ingress import IngressSelector
from repro.experiments.common import Scenario
from repro.net.addr import Address, is_private, same_slash30

#: Paper reference values.
PAPER_VIOLATION_RATE = 0.066
PAPER_AS_AFFECTING_RATE = 0.013


@dataclass
class DBRResult:
    tuples_tested: int = 0
    load_balancers: int = 0
    violations: int = 0
    as_affecting: int = 0

    def violation_rate(self) -> float:
        if not self.tuples_tested:
            return 0.0
        return self.violations / self.tuples_tested

    def as_affecting_rate(self) -> float:
        if not self.tuples_tested:
            return 0.0
        return self.as_affecting / self.tuples_tested


def _next_hop_after(
    reverse_hops: List[Address], target_stamp: Optional[Address] = None
) -> Optional[Address]:
    """First public reverse hop after the probed hop's own stamp."""
    hops = reverse_hops[1:] if reverse_hops else []
    for hop in hops:
        if not is_private(hop):
            return hop
    return None


def _matches(a: Optional[Address], b: Optional[Address]) -> bool:
    if a is None or b is None:
        return False
    return a == b or same_slash30(a, b)


def run(
    scenario: Scenario,
    n_pairs: int = 300,
    repeats: int = 3,
) -> DBRResult:
    """Run the Appendix E replication."""
    rng = random.Random(scenario.seed ^ 0xDB12)
    prober = scenario.online_prober
    selector = IngressSelector(scenario.ingress_directory())
    sources = scenario.sources()
    destinations = scenario.responsive_destinations(
        options_only=True
    )
    result = DBRResult()

    attempts = 0
    while result.tuples_tested < n_pairs and attempts < n_pairs * 4:
        attempts += 1
        source = rng.choice(sources)
        dst = rng.choice(destinations)

        hops = _reveal(prober, selector, source, dst)
        if len(hops) < 3:
            continue
        # Adjacent reverse-hop pairs (skip the destination's own stamp).
        pairs = [
            (hops[i], hops[i + 1])
            for i in range(1, len(hops) - 1)
            if not is_private(hops[i]) and not is_private(hops[i + 1])
        ]
        for r, r_next in pairs:
            if result.tuples_tested >= n_pairs:
                break
            observed: Set[Address] = set()
            for _ in range(repeats):
                probe_hops = _reveal(prober, selector, source, r)
                nxt = _next_hop_after(probe_hops)
                if nxt is not None:
                    observed.add(nxt)
            if not observed:
                continue
            result.tuples_tested += 1
            if any(_matches(o, r_next) for o in observed):
                continue  # destination-based, consistent
            if len(observed) > 1:
                # Multiple next hops across repeats: per-packet load
                # balancing of option-carrying packets, not a
                # violation (Fig. 10 of the paper).
                result.load_balancers += 1
                continue
            result.violations += 1
            nxt = next(iter(observed))
            asn_observed = scenario.ip2as.asn(nxt)
            asn_expected = scenario.ip2as.asn(r_next)
            if (
                asn_observed is not None
                and asn_expected is not None
                and asn_observed != asn_expected
            ):
                result.as_affecting += 1
    return result


def _reveal(prober, selector, source, target) -> List[Address]:
    """Reverse hops from target toward source via spoofed RR."""
    for batch in selector.batches(target)[:2]:
        vps = [vp for vp in batch if vp != source]
        if not vps:
            continue
        results = prober.spoofed_rr_batch(vps, target, spoof_as=source)
        best = max(results, key=lambda r: len(r.reverse_hops()))
        if best.reverse_hops():
            return best.reverse_hops()
    direct = prober.rr_ping(source, target)
    return direct.reverse_hops() if direct.responded else []


def format_report(result: DBRResult) -> str:
    return "\n".join(
        [
            "Appendix E — destination-based routing violations",
            f"tuples tested: {result.tuples_tested}",
            f"load balancers (excluded): {result.load_balancers}",
            f"violations: {result.violations} "
            f"({result.violation_rate():.1%}, paper "
            f"{PAPER_VIOLATION_RATE:.1%})",
            f"AS-affecting: {result.as_affecting} "
            f"({result.as_affecting_rate():.1%}, paper "
            f"{PAPER_AS_AFFECTING_RATE:.1%})",
        ]
    )
