"""Appendix D.2.1: traceroute atlas design (Figs. 9a, 9b, 9c).

A simulation over a corpus of traceroutes toward each source: part of
the corpus can be selected into the atlas, the rest replay as "reverse
traceroutes" (destination-based routing means a reverse traceroute
from a VP follows that VP's traceroute). Metrics:

* Fig. 9a — mean fraction of hops provided by the atlas, versus atlas
  size, for random selection and for greedy weighted-max-coverage
  (the oracle); the paper finds random at 1000/5000 reaches 50% vs
  56% for optimal.
* Fig. 9b — the daily Random++ replacement policy converges to the
  optimal curve in about five iterations.
* Fig. 9c — savings stay flat as the number of reverse traceroutes
  grows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.stats import mean
from repro.experiments.common import Scenario
from repro.net.addr import Address
from repro.net.packet import TracerouteResult
from repro.probing.traceroute import paris_traceroute


@dataclass
class AtlasStudyResult:
    #: atlas size -> mean intersected-hop fraction (random selection)
    random_curve: Dict[int, float]
    #: atlas size -> same for the greedy oracle selection
    optimal_curve: Dict[int, float]
    #: Random++ iteration -> mean fraction (Fig 9b)
    convergence: List[float]
    #: number of revtrs -> mean fraction at a fixed atlas size (Fig 9c)
    scaling: Dict[int, float]
    optimal_at_full: float = 0.0
    #: the greedy-oracle value at the Fig 9b atlas size, for reference
    convergence_optimal: float = 0.0


def _collect_corpus(
    scenario: Scenario, source: Address, vps: Sequence[Address]
) -> List[TracerouteResult]:
    corpus = []
    for vp in vps:
        trace = paris_traceroute(
            scenario.background_prober, vp, source
        )
        if trace.reached and trace.responsive_hops():
            corpus.append(trace)
    return corpus


def _hop_sets(
    corpus: Sequence[TracerouteResult],
) -> List[List[Address]]:
    return [trace.responsive_hops()[:-1] for trace in corpus]


def _intersected_fraction(
    revtr_hops: Sequence[Address], atlas_hops: Set[Address]
) -> float:
    """Fraction of the reverse traceroute's hops the atlas provides.

    The atlas contributes the suffix from the first (deepest from the
    destination) hop present in the atlas; destination-based routing
    lets the system copy everything after that point.
    """
    if not revtr_hops:
        return 0.0
    for index, hop in enumerate(revtr_hops):
        if hop in atlas_hops:
            return (len(revtr_hops) - index) / len(revtr_hops)
    return 0.0


def _greedy_selection(
    traces: List[List[Address]], budget: int
) -> List[int]:
    """Greedy weighted max-coverage of hops (the paper's oracle).

    Hop weight: summed distance-to-source over the traceroutes where
    the hop appears — covering hops far from the source saves more.
    """
    weights: Dict[Address, int] = {}
    for hops in traces:
        for index, hop in enumerate(hops):
            weights[hop] = weights.get(hop, 0) + (len(hops) - index)
    covered: Set[Address] = set()
    chosen: List[int] = []
    remaining = set(range(len(traces)))
    while remaining and len(chosen) < budget:
        best_index, best_gain = None, -1
        for index in sorted(remaining):
            gain = sum(
                weights[hop]
                for hop in set(traces[index]) - covered
            )
            if gain > best_gain:
                best_index, best_gain = index, gain
        if best_index is None:
            break
        chosen.append(best_index)
        covered |= set(traces[best_index])
        remaining.discard(best_index)
    return chosen


def _mean_fraction(
    atlas_indexes: Sequence[int],
    atlas_traces: List[List[Address]],
    revtr_traces: List[List[Address]],
) -> float:
    atlas_hops: Set[Address] = set()
    for index in atlas_indexes:
        atlas_hops |= set(atlas_traces[index])
    return mean(
        [
            _intersected_fraction(hops, atlas_hops)
            for hops in revtr_traces
        ]
        or [0.0]
    )


def run(
    scenario: Scenario,
    n_sources: int = 3,
    sizes: Sequence[int] = (2, 5, 10, 15, 20, 25),
    iterations: int = 10,
) -> AtlasStudyResult:
    """Run the atlas-selection study."""
    rng = random.Random(scenario.seed ^ 0x47A5)
    random_curve: Dict[int, List[float]] = {s: [] for s in sizes}
    optimal_curve: Dict[int, List[float]] = {s: [] for s in sizes}
    convergence: List[List[float]] = [[] for _ in range(iterations)]
    convergence_oracle: List[float] = []
    scaling: Dict[int, List[float]] = {}
    optimal_full: List[float] = []

    for source in scenario.sources(n_sources):
        corpus = _collect_corpus(
            scenario, source, scenario.atlas_vp_addrs
        )
        traces = _hop_sets(corpus)
        if len(traces) < 8:
            continue
        split = len(traces) // 2
        indexes = list(range(len(traces)))
        rng.shuffle(indexes)
        atlas_side = [traces[i] for i in indexes[:split]]
        revtr_side = [traces[i] for i in indexes[split:]]

        # Fig 9a: random vs greedy-oracle selection at each size.
        for size in sizes:
            budget = min(size, len(atlas_side))
            picks = rng.sample(range(len(atlas_side)), budget)
            random_curve[size].append(
                _mean_fraction(picks, atlas_side, revtr_side)
            )
            oracle = _greedy_selection(atlas_side, budget)
            optimal_curve[size].append(
                _mean_fraction(oracle, atlas_side, revtr_side)
            )
        optimal_full.append(
            _mean_fraction(
                range(len(atlas_side)), atlas_side, revtr_side
            )
        )

        # Fig 9b: Random++ iterations toward the optimal value.
        target_size = max(2, len(atlas_side) // 3)
        current = rng.sample(range(len(atlas_side)), target_size)
        eval_sample = revtr_side  # fixed evaluation set
        convergence_oracle.append(
            _mean_fraction(
                _greedy_selection(atlas_side, target_size),
                atlas_side,
                eval_sample,
            )
        )
        for iteration in range(iterations):
            sample = [
                revtr_side[rng.randrange(len(revtr_side))]
                for _ in range(min(30, len(revtr_side) * 3))
            ]
            convergence[iteration].append(
                _mean_fraction(current, atlas_side, eval_sample)
            )
            # Keep traceroutes that produced intersections; replace
            # the rest with fresh random picks.
            atlas_hops_of = {
                i: set(atlas_side[i]) for i in current
            }
            useful: Set[int] = set()
            for hops in sample:
                for hop in hops:
                    for i, hopset in atlas_hops_of.items():
                        if hop in hopset:
                            useful.add(i)
                            break
                    else:
                        continue
                    break
            pool = [
                i
                for i in range(len(atlas_side))
                if i not in useful
            ]
            rng.shuffle(pool)
            current = sorted(useful) + pool[
                : target_size - len(useful)
            ]

        # Fig 9c: fraction vs number of revtrs at fixed atlas size.
        fixed = rng.sample(
            range(len(atlas_side)), min(10, len(atlas_side))
        )
        for count in (5, 10, 20, 40):
            sample = [
                revtr_side[rng.randrange(len(revtr_side))]
                for _ in range(count)
            ]
            scaling.setdefault(count, []).append(
                _mean_fraction(fixed, atlas_side, sample)
            )

    return AtlasStudyResult(
        random_curve={
            s: mean(v) for s, v in random_curve.items() if v
        },
        optimal_curve={
            s: mean(v) for s, v in optimal_curve.items() if v
        },
        convergence=[mean(v) for v in convergence if v],
        scaling={c: mean(v) for c, v in scaling.items() if v},
        optimal_at_full=mean(optimal_full) if optimal_full else 0.0,
        convergence_optimal=(
            mean(convergence_oracle) if convergence_oracle else 0.0
        ),
    )


def format_report(result: AtlasStudyResult) -> str:
    lines = [
        "Fig 9a — atlas savings vs size (mean hop fraction intersected)",
        f"{'size':>6}{'random':>9}{'optimal':>9}",
    ]
    for size in sorted(result.random_curve):
        lines.append(
            f"{size:6d}{result.random_curve[size]:9.2f}"
            f"{result.optimal_curve.get(size, 0.0):9.2f}"
        )
    lines.append(
        f"full-corpus optimal: {result.optimal_at_full:.2f} "
        "(paper: random@1000 = 50%, optimal@1000 = 56%, "
        "optimal@5000 = 60%)"
    )
    lines.append("")
    lines.append(
        "Fig 9b — Random++ convergence (paper: ~5 iterations suffice)"
    )
    lines.append(
        f"  greedy-oracle reference at same size: "
        f"{result.convergence_optimal:.2f}"
    )
    for iteration, value in enumerate(result.convergence):
        lines.append(f"  iter {iteration}: {value:.2f}")
    lines.append("")
    lines.append("Fig 9c — savings vs number of reverse traceroutes")
    for count in sorted(result.scaling):
        lines.append(f"  {count:4d} revtrs: {result.scaling[count]:.2f}")
    lines.append("(paper: <1% decrease from 1k to 9k revtrs)")
    return "\n".join(lines)
