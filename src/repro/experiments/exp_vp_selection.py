"""§5.3: evaluating record-route vantage-point selection.

Covers Fig. 6a (batch size sweep), Fig. 6b (reverse hops uncovered by
the first batch, per technique), Fig. 6c (number of spoofers tried),
and Table 5 (fraction of prefixes with a VP found within 8 RR hops,
with the Appendix C heuristics enabled incrementally).

Per the paper's methodology, each evaluated prefix needs at least
three RR-responsive destinations: two feed the ingress inference, the
third is the held-out evaluation target.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ingress import (
    GlobalOrderSelector,
    IngressDirectory,
    IngressSelector,
    SetCoverSelector,
    survey_vp_ranges,
)
from repro.experiments.common import Scenario
from repro.net.addr import Address, Prefix

#: Paper reference: Table 5 fractions of prefixes with a VP in range.
PAPER_TABLE5 = {
    "ingress": 0.65,
    "ingress+double-stamp": 0.70,
    "ingress+double-stamp+loop": 0.71,
    "revtr1.0": 0.72,
    "optimal": 0.72,
}

#: Techniques compared in Figs. 6b/6c.
TECHNIQUES = ("ingress", "revtr1.0", "global")


@dataclass
class PrefixEval:
    """Per-prefix evaluation against the held-out destination."""

    prefix: Prefix
    eval_dst: Address
    #: technique -> reverse hops revealed by the first batch of 3
    first_batch_hops: Dict[str, int] = field(default_factory=dict)
    #: batch size -> reverse hops revealed by the first batch (ingress)
    batch_size_hops: Dict[int, int] = field(default_factory=dict)
    #: technique -> number of spoofers tried before success/give-up
    spoofers_tried: Dict[str, int] = field(default_factory=dict)
    #: best over all VPs (the Optimal lines)
    optimal_hops: int = 0
    optimal_in_range: bool = False


@dataclass
class VPSelectionResult:
    evals: List[PrefixEval]
    #: Table 5: technique -> fraction of prefixes with VP in range
    table5: Dict[str, float]
    prefixes_evaluated: int = 0

    def first_batch_distribution(self, technique: str) -> List[int]:
        return [
            e.first_batch_hops.get(technique, 0) for e in self.evals
        ]

    def optimal_distribution(self) -> List[int]:
        return [e.optimal_hops for e in self.evals]

    def spoofers_distribution(self, technique: str) -> List[int]:
        return [
            e.spoofers_tried.get(technique, 0) for e in self.evals
        ]

    def batch_size_distribution(self, size: int) -> List[int]:
        return [e.batch_size_hops.get(size, 0) for e in self.evals]


def _reveal(prober, vp: Address, dst: Address, source: Address) -> int:
    """Reverse hops revealed by one spoofed RR probe."""
    result = prober.rr_ping(vp, dst, spoof_as=source, advance_clock=False)
    return len(result.reverse_hops())


def _eval_prefixes(
    scenario: Scenario, max_prefixes: int
) -> List[Tuple[Prefix, List[Address]]]:
    """Prefixes with >=3 RR-responsive destinations, shuffled."""
    rng = random.Random(scenario.seed ^ 0xF6)
    prober = scenario.background_prober
    probe_vp = scenario.spoofer_addrs[0]
    chosen: List[Tuple[Prefix, List[Address]]] = []
    infos = scenario.internet.host_prefixes()
    rng.shuffle(infos)
    for info in infos:
        responsive = []
        for addr in sorted(info.hosts):
            if prober.rr_ping(probe_vp, addr).responded:
                responsive.append(addr)
            if len(responsive) >= 3:
                break
        if len(responsive) >= 3:
            chosen.append((info.prefix, responsive))
        if len(chosen) >= max_prefixes:
            break
    return chosen


def run(
    scenario: Scenario,
    max_prefixes: int = 120,
    batch_sizes: Sequence[int] = (1, 3, 5),
) -> VPSelectionResult:
    """Run the §5.3 evaluation."""
    rng = random.Random(scenario.seed ^ 0x6B)
    prober = scenario.online_prober
    spoofers = scenario.spoofer_addrs
    sources = scenario.sources()

    prefixes = _eval_prefixes(scenario, max_prefixes)

    # Three ingress directories for the Table 5 heuristic ladder.
    directories: Dict[str, IngressDirectory] = {}
    for name, double_stamp, loop in (
        ("ingress", False, False),
        ("ingress+double-stamp", True, False),
        ("ingress+double-stamp+loop", True, True),
    ):
        directory = IngressDirectory(
            scenario.internet,
            scenario.background_prober,
            spoofers,
            rng=random.Random(
                scenario.seed ^ zlib.crc32(name.encode()) & 0xFFF
            ),
            use_double_stamp=double_stamp,
            use_loop=loop,
        )
        directory.survey_all(
            scenario.internet.prefixes[p] for p, _ in prefixes
        )
        directories[name] = directory

    ranges = scenario.vp_ranges()
    selectors = {
        "ingress": IngressSelector(
            directories["ingress+double-stamp+loop"]
        ),
        "revtr1.0": SetCoverSelector(
            scenario.internet, ranges, spoofers
        ),
        "global": GlobalOrderSelector(ranges, spoofers),
    }

    evals: List[PrefixEval] = []
    in_range_counts = {name: 0 for name in PAPER_TABLE5}
    for prefix, responsive in prefixes:
        eval_dst = responsive[2]
        source = rng.choice(sources)
        evaluation = PrefixEval(prefix=prefix, eval_dst=eval_dst)

        # Optimal: the best any VP can do.
        per_vp = {
            vp: _reveal(prober, vp, eval_dst, source)
            for vp in spoofers
        }
        per_vp_distance = {}
        for vp in spoofers:
            result = prober.rr_ping(vp, eval_dst, advance_clock=False)
            distance = result.distance()
            if distance is not None and distance <= 8:
                per_vp_distance[vp] = distance
        evaluation.optimal_hops = max(per_vp.values(), default=0)
        evaluation.optimal_in_range = bool(per_vp_distance)

        # Techniques: first batch and spoofers tried.
        for name, selector in selectors.items():
            batches = selector.batches(eval_dst)
            first = batches[0] if batches else []
            evaluation.first_batch_hops[name] = max(
                (per_vp.get(vp, 0) for vp in first), default=0
            )
            tried = 0
            success = False
            for batch in batches:
                for vp in batch:
                    tried += 1
                if any(per_vp.get(vp, 0) > 0 for vp in batch):
                    success = True
                    break
            evaluation.spoofers_tried[name] = tried
            del success

        # Fig 6a: ingress order with different batch sizes.
        order = directories[
            "ingress+double-stamp+loop"
        ].vp_order_for(eval_dst)
        for size in batch_sizes:
            first = order[:size]
            evaluation.batch_size_hops[size] = max(
                (per_vp.get(vp, 0) for vp in first), default=0
            )

        # Table 5: does each technique find an in-range VP?
        for name, directory in directories.items():
            order = directory.vp_order_for(eval_dst)
            if any(vp in per_vp_distance for vp in order[:5]):
                in_range_counts[name] += 1
        range_survey = ranges.get(prefix, {})
        if any(vp in per_vp_distance for vp in range_survey):
            in_range_counts["revtr1.0"] += 1
        if evaluation.optimal_in_range:
            in_range_counts["optimal"] += 1

        evals.append(evaluation)

    total = max(1, len(evals))
    table5 = {
        name: count / total for name, count in in_range_counts.items()
    }
    return VPSelectionResult(
        evals=evals, table5=table5, prefixes_evaluated=len(evals)
    )


def format_table5(result: VPSelectionResult) -> str:
    lines = [
        "Table 5 — fraction of prefixes with a VP within 8 RR hops",
        f"{'technique':28s}{'measured':>10}{'paper':>8}",
    ]
    for name, paper in PAPER_TABLE5.items():
        lines.append(
            f"{name:28s}{result.table5.get(name, 0.0):10.2f}{paper:8.2f}"
        )
    lines.append(f"prefixes evaluated: {result.prefixes_evaluated}")
    return "\n".join(lines)


def format_fig6(result: VPSelectionResult) -> str:
    from repro.analysis.stats import fraction_leq, mean

    lines = ["Fig 6 — record-route VP selection"]
    lines.append("(a) reverse hops revealed by first batch vs size:")
    for size in (1, 3, 5):
        values = result.batch_size_distribution(size)
        if not values:
            continue
        lines.append(
            f"  batch={size}: mean={mean(values):.2f}  "
            f">=4 hops: {1 - fraction_leq(values, 3):.0%}"
        )
    optimal = result.optimal_distribution()
    lines.append(
        f"  optimal: mean={mean(optimal):.2f}  "
        f">=4 hops: {1 - fraction_leq(optimal, 3):.0%}"
    )
    lines.append("(b) first batch of 3, per technique "
                 "(paper: ingress~optimal >> revtr1.0):")
    for name in TECHNIQUES:
        values = result.first_batch_distribution(name)
        lines.append(
            f"  {name:10s}: mean={mean(values):.2f}  "
            f">=4 hops: {1 - fraction_leq(values, 3):.0%}"
        )
    lines.append("(c) spoofers tried (paper: 2.0 tries 10+ for <5% "
                 "of prefixes vs 28% for 1.0):")
    for name in TECHNIQUES:
        values = result.spoofers_distribution(name)
        lines.append(
            f"  {name:10s}: mean={mean(values):.1f}  "
            f">6 tried: {1 - fraction_leq(values, 6):.0%}"
        )
    return "\n".join(lines)
