"""Appendix D.2.2 / Fig. 9d: impact of atlas staleness over a day.

A 24-virtual-hour run: the atlas is built once, reverse traceroutes
run continuously, and the underlying routing churns (multihomed edge
networks flip their preferred provider — the dominant real-world
source of path change). Whenever a reverse traceroute intersects an
atlas traceroute, the traceroute is re-measured and compared:

* **no intersection** — the intersected hop is no longer on the fresh
  path (the paper's conservative case);
* **wrong AS path** — the AS-level path after the intersection changed.

The paper finds only 0.7% of reverse traceroutes intersect a stale
traceroute over a day.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.result import RevtrStatus
from repro.experiments.common import Scenario
from repro.net.addr import Address
from repro.probing.traceroute import paris_traceroute

#: Paper headline: cumulative stale-intersection fraction after 24 h.
PAPER_STALE_FRACTION = 0.007


@dataclass
class HourBucket:
    revtrs: int = 0
    intersections: int = 0
    stale_no_intersection: int = 0
    stale_wrong_as_path: int = 0


@dataclass
class StalenessResult:
    hours: List[HourBucket]
    churn_events: List[int]

    def cumulative_stale_fraction(self) -> List[float]:
        """Per-hour cumulative fraction of revtrs hitting staleness."""
        fractions = []
        revtrs = stale = 0
        for bucket in self.hours:
            revtrs += bucket.revtrs
            stale += (
                bucket.stale_no_intersection
                + bucket.stale_wrong_as_path
            )
            fractions.append(stale / revtrs if revtrs else 0.0)
        return fractions

    def final_fraction(self) -> float:
        cumulative = self.cumulative_stale_fraction()
        return cumulative[-1] if cumulative else 0.0


def _flip_preference(scenario: Scenario, rng: random.Random) -> bool:
    """One churn event: a multihomed edge AS flips its preferred
    provider (a routine BGP policy change).

    Flips are sampled among edge networks that host atlas vantage
    points — the population whose changes can invalidate atlas
    traceroutes, which is the effect Fig. 9d quantifies.
    """
    internet = scenario.internet
    graph = internet.graph
    vp_asns = {
        internet.hosts[addr].asn for addr in internet.atlas_hosts
    }
    candidates = [
        asn
        for asn, node in graph.nodes.items()
        if node.neighbor_pref
        and len(node.providers()) >= 2
        and asn in vp_asns
    ]
    if not candidates:
        candidates = [
            asn
            for asn, node in graph.nodes.items()
            if node.neighbor_pref and len(node.providers()) >= 2
        ]
    if not candidates:
        return False
    asn = rng.choice(sorted(candidates))
    node = graph.nodes[asn]
    providers = sorted(node.providers())
    current = max(
        node.neighbor_pref, key=lambda n: node.neighbor_pref[n]
    )
    others = [p for p in providers if p != current]
    if not others:
        return False
    node.neighbor_pref.clear()
    node.neighbor_pref[rng.choice(others)] = 100
    scenario.internet.invalidate_routing()
    return True


def run(
    scenario: Scenario,
    hours: int = 24,
    revtrs_per_hour: int = 20,
    churn_hours: Tuple[int, ...] = (3, 7, 11, 15, 19, 22),
    n_sources: int = 2,
) -> StalenessResult:
    """Run the 24-hour staleness study."""
    rng = random.Random(scenario.seed ^ 0x57A1)
    clock = scenario.clock
    sources = scenario.sources(n_sources)
    engines = {
        source: scenario.engine(source, "revtr2.0")
        for source in sources
    }
    destinations = scenario.responsive_destinations(
        options_only=True
    )
    start = clock.now()
    buckets = [HourBucket() for _ in range(hours)]
    churned: List[int] = []

    for hour in range(hours):
        hour_start = start + hour * 3600.0
        if clock.now() < hour_start:
            clock.advance_to(hour_start)
        if hour in churn_hours and _flip_preference(scenario, rng):
            churned.append(hour)
        bucket = buckets[hour]
        for _ in range(revtrs_per_hour):
            source = rng.choice(sources)
            dst = rng.choice(destinations)
            engine = engines[source]
            result = engine.measure(dst)
            if result.status is not RevtrStatus.COMPLETE:
                continue
            bucket.revtrs += 1
            vp = result.intersection_vp
            if vp is None:
                continue
            bucket.intersections += 1
            verdict = _check_staleness(scenario, engine, vp, result)
            if verdict == "no-intersection":
                bucket.stale_no_intersection += 1
            elif verdict == "wrong-as-path":
                bucket.stale_wrong_as_path += 1
    return StalenessResult(hours=buckets, churn_events=churned)


def _check_staleness(
    scenario: Scenario, engine, vp: Address, result
) -> Optional[str]:
    """Re-measure the intersected traceroute and compare (Fig. 9d)."""
    atlas = engine.atlas
    stored = atlas.traceroutes.get(vp)
    if stored is None:
        return None
    fresh = paris_traceroute(
        scenario.background_prober, vp, atlas.source
    )
    # Find the intersected hop: the first stored hop present in the
    # measured reverse path's addresses.
    reverse_addrs = set(result.addresses())
    intersect_index = None
    for index, hop in enumerate(stored.hops):
        if hop is not None and hop in reverse_addrs:
            intersect_index = index
            break
    if intersect_index is None:
        return None
    hop = stored.hops[intersect_index]
    fresh_hops = [h for h in fresh.hops if h is not None]
    if hop not in fresh_hops:
        return "no-intersection"
    stored_suffix = scenario.ip2as.collapsed_as_path(
        [h for h in stored.hops[intersect_index:] if h is not None]
    )
    fresh_suffix = scenario.ip2as.collapsed_as_path(
        fresh.hops[fresh.hops.index(hop):]
    )
    if stored_suffix != fresh_suffix:
        return "wrong-as-path"
    return None


def format_report(result: StalenessResult) -> str:
    lines = [
        "Fig 9d — reverse traceroutes intersecting a stale traceroute",
        f"churn events at hours: {result.churn_events}",
        f"{'hour':>5}{'revtrs':>8}{'intersects':>11}"
        f"{'stale-gone':>11}{'stale-AS':>9}{'cum-frac':>10}",
    ]
    cumulative = result.cumulative_stale_fraction()
    for hour, bucket in enumerate(result.hours):
        if hour % 4 and hour != len(result.hours) - 1:
            continue
        lines.append(
            f"{hour:5d}{bucket.revtrs:8d}{bucket.intersections:11d}"
            f"{bucket.stale_no_intersection:11d}"
            f"{bucket.stale_wrong_as_path:9d}"
            f"{cumulative[hour]:10.3f}"
        )
    lines.append(
        f"after 24h: {result.final_fraction():.3f} of revtrs hit a "
        f"stale traceroute (paper {PAPER_STALE_FRACTION:.3f})"
    )
    return "\n".join(lines)
