"""§6.2: the Internet path-asymmetry study.

A bidirectional campaign — forward traceroute from each M-Lab source to
each destination, reverse traceroute back — feeding:

* Fig. 8a: symmetry CCDF at AS and router granularity
  (paper: only 53% of paths symmetric at AS level; at router level the
  median reverse path shares 28% of forward hops);
* Fig. 8b / Table 7: per-AS asymmetry prevalence vs customer cone
  (tier-1s dominate; NRENs are small-cone outliers);
* Fig. 12: the same excluding paths with symmetry assumptions;
* Fig. 13: AS-path lengths of symmetric vs asymmetric paths;
* Fig. 14: P(hop also on reverse path) by position.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.asymmetry import (
    AsymmetryPrevalence,
    as_symmetry_fraction,
    asymmetry_prevalence,
    hop_symmetry_fraction,
    path_length_distribution,
    positional_symmetry,
)
from repro.analysis.stats import fraction_leq, mean, median
from repro.core.result import RevtrStatus
from repro.experiments.common import Scenario
from repro.net.addr import Address
from repro.probing.traceroute import paris_traceroute
from repro.topology.asgraph import ASTier

#: Paper reference values.
PAPER_AS_SYMMETRIC = 0.53
PAPER_ROUTER_MEDIAN = 0.28


@dataclass
class PairRecord:
    """One bidirectional measurement."""

    src: Address
    dst: Address
    forward_as: List[int]
    reverse_as: List[int]  # normalised to forward orientation
    router_symmetry: Optional[float]
    as_symmetry: Optional[float]
    has_assumption: bool

    @property
    def as_symmetric(self) -> bool:
        """The paper's predicate: every forward AS is on the reverse
        path (membership, not sequence equality — §6.2, Appx G.3)."""
        from repro.analysis.asymmetry import is_symmetric_pair

        return is_symmetric_pair(self.forward_as, self.reverse_as)


@dataclass
class AsymmetryCampaign:
    records: List[PairRecord]
    scenario: Scenario

    def as_symmetric_fraction(
        self, exclude_assumptions: bool = False
    ) -> float:
        records = self._subset(exclude_assumptions)
        if not records:
            return 0.0
        return sum(1 for r in records if r.as_symmetric) / len(records)

    def router_symmetry_values(
        self, exclude_assumptions: bool = False
    ) -> List[float]:
        return [
            r.router_symmetry
            for r in self._subset(exclude_assumptions)
            if r.router_symmetry is not None
        ]

    def as_pairs(
        self, exclude_assumptions: bool = False
    ) -> List[Tuple[List[int], List[int]]]:
        return [
            (r.forward_as, r.reverse_as)
            for r in self._subset(exclude_assumptions)
        ]

    def _subset(self, exclude_assumptions: bool) -> List[PairRecord]:
        if not exclude_assumptions:
            return self.records
        return [r for r in self.records if not r.has_assumption]

    def prevalence(self) -> AsymmetryPrevalence:
        return asymmetry_prevalence(self.as_pairs())

    def cone_scatter(self) -> List[Tuple[int, int, float, str]]:
        """Fig 8b points: (asn, cone size, prevalence, tier)."""
        prevalence = self.prevalence()
        graph = self.scenario.internet.graph
        points = []
        for asn in prevalence.involved:
            if asn not in graph:
                continue
            points.append(
                (
                    asn,
                    graph.cone_size(asn),
                    prevalence.prevalence(asn),
                    graph.nodes[asn].tier.value,
                )
            )
        points.sort(key=lambda p: -p[2])
        return points


def run(
    scenario: Scenario,
    n_destinations: int = 200,
    n_sources: int = 4,
) -> AsymmetryCampaign:
    """Run the bidirectional campaign."""
    destinations = scenario.responsive_destinations(
        n_destinations, options_only=True
    )
    records: List[PairRecord] = []
    for source in scenario.sources(n_sources):
        engine = scenario.engine(source, "revtr2.0")
        for dst in destinations:
            result = engine.measure(dst)
            if result.status is not RevtrStatus.COMPLETE:
                continue
            forward = paris_traceroute(
                scenario.background_prober, source, dst
            )
            if not forward.reached:
                continue
            forward_hops = [h for h in forward.hops if h is not None]
            forward_as = scenario.ip2as.collapsed_as_path(forward_hops)
            reverse_as = list(
                reversed(
                    scenario.ip2as.collapsed_as_path(
                        result.addresses()
                    )
                )
            )
            records.append(
                PairRecord(
                    src=source,
                    dst=dst,
                    forward_as=forward_as,
                    reverse_as=reverse_as,
                    router_symmetry=hop_symmetry_fraction(
                        forward.hops,
                        result.addresses(),
                        scenario.resolver,
                    ),
                    as_symmetry=as_symmetry_fraction(
                        forward_as, reverse_as
                    ),
                    has_assumption=result.has_symmetry_assumption,
                )
            )
    return AsymmetryCampaign(records=records, scenario=scenario)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


def format_fig8a(campaign: AsymmetryCampaign) -> str:
    router = campaign.router_symmetry_values()
    lines = [
        "Fig 8a — path symmetry",
        f"pairs: {len(campaign.records)}",
        f"AS-level symmetric: {campaign.as_symmetric_fraction():.0%}"
        f" (paper {PAPER_AS_SYMMETRIC:.0%})",
    ]
    if router:
        lines.append(
            f"router-level median shared fraction: "
            f"{median(router):.2f} (paper {PAPER_ROUTER_MEDIAN:.2f})"
        )
    return "\n".join(lines)


def format_fig8b_table7(campaign: AsymmetryCampaign, top: int = 10) -> str:
    graph = campaign.scenario.internet.graph
    lines = [
        "Fig 8b / Table 7 — asymmetry prevalence vs customer cone",
        f"{'rank':>4} {'ASN':>6} {'prevalence':>11} {'cone':>6} {'tier':>8}",
    ]
    for rank, (asn, cone, prevalence, tier) in enumerate(
        campaign.cone_scatter()[:top], start=1
    ):
        lines.append(
            f"{rank:4d} {asn:6d} {prevalence:11.3f} {cone:6d} {tier:>8}"
        )
    points = campaign.cone_scatter()
    tier1 = [p for p in points if p[3] == "tier1"]
    nren = [p for p in points if p[3] == "nren"]
    if tier1:
        lines.append(
            f"tier-1 mean prevalence: "
            f"{mean([p[2] for p in tier1]):.3f} "
            f"(paper: tier-1s dominate the top ranks)"
        )
    if nren:
        lines.append(
            f"NREN mean prevalence: {mean([p[2] for p in nren]):.3f} "
            f"with cone {max(p[1] for p in nren)} "
            f"(paper: small-cone outliers)"
        )
    return "\n".join(lines)


def format_fig12(campaign: AsymmetryCampaign) -> str:
    full = campaign.as_symmetric_fraction()
    no_assumption = campaign.as_symmetric_fraction(
        exclude_assumptions=True
    )
    return (
        "Fig 12 — symmetry excluding assumption-bearing paths\n"
        f"all complete paths: {full:.0%} symmetric; "
        f"no-assumption subset: {no_assumption:.0%} "
        "(paper: within 3% of each other)"
    )


def format_fig13(campaign: AsymmetryCampaign) -> str:
    graph = campaign.scenario.internet.graph
    tier1 = set(graph.tier1_asns())
    pairs = campaign.as_pairs()
    sym = path_length_distribution(
        pairs, symmetric=True, through_asns=tier1
    )
    asym = path_length_distribution(
        pairs, symmetric=False, through_asns=tier1
    )
    lines = ["Fig 13 — AS-path length vs symmetry (through tier-1s)"]
    if sym:
        lines.append(
            f"symmetric paths: mean length {mean(sym):.2f} (n={len(sym)})"
        )
    if asym:
        lines.append(
            f"asymmetric paths: mean length {mean(asym):.2f} (n={len(asym)})"
        )
    lines.append("(paper: symmetric paths are shorter)")
    return "\n".join(lines)


def format_fig14(campaign: AsymmetryCampaign) -> str:
    pairs = campaign.as_pairs()
    lines = [
        "Fig 14 — P(hop also on reverse path) by position "
        "(paper: dips mid-path)"
    ]
    for length in (3, 4, 5, 6):
        profile = positional_symmetry(pairs, length)
        if profile:
            rendered = " ".join(f"{p:.2f}" for p in profile)
            lines.append(f"  {length}-hop paths: [{rendered}]")
    return "\n".join(lines)
