"""Experiment harnesses: one module per paper table/figure.

Each ``exp_*`` module exposes a ``run(...)`` function returning a
result object with paper-reference values attached, and a
``format_report(...)`` helper that prints the same rows/series the
paper reports. The benchmarks under ``benchmarks/`` call these.
"""

from repro.experiments.common import Scenario, SourceBundle

__all__ = ["Scenario", "SourceBundle"]
