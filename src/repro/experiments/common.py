"""Shared experiment scaffolding.

A :class:`Scenario` owns one simulated Internet plus the measurement
infrastructure around it — vantage-point pool, background/online
probers, offline datasets (ITDK aliases, ingress directory, VP range
survey, adjacency corpus) — and hands out fully wired
:class:`~repro.core.revtr.RevtrEngine` instances for any system variant
(revtr 2.0, revtr 1.0, and the Table 4 ladder in between).

Background measurements (atlas building, surveys) share the virtual
clock with online measurements — the atlas really is "yesterday's" by
the time reverse traceroutes run — but are charged to a separate probe
counter so online probe costs (Table 4) stay clean.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.alias.itdk import build_itdk_dataset
from repro.alias.resolver import AliasResolver
from repro.asmap.ip2as import IPToASMapper
from repro.asmap.relationships import ASRelationships
from repro.core.adjacency import AdjacencyDatabase
from repro.core.atlas import TracerouteAtlas
from repro.core.cache import MeasurementCache
from repro.core.ingress import (
    GlobalOrderSelector,
    IngressDirectory,
    IngressSelector,
    SetCoverSelector,
    survey_vp_ranges,
)
from repro.core.revtr import EngineConfig, RevtrEngine
from repro.core.revtr_legacy import legacy_engine_config
from repro.core.rr_atlas import RRAtlas
from repro.core.segcache import ReverseSegmentCache
from repro.net.addr import Address
from repro.obs.runtime import attach, get_default
from repro.probing.budget import ProbeCounter
from repro.probing.prober import Prober
from repro.probing.vantage import VantagePointPool
from repro.sim.clock import VirtualClock
from repro.sim.network import Internet
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_internet

#: Variant names accepted by :meth:`Scenario.engine`.
VARIANTS = (
    "revtr1.0",
    "revtr1.0+ingress",
    "revtr1.0+ingress+cache",
    "revtr1.0+ingress+cache-TS",
    "revtr2.0",
    "revtr2.0+TS",
)


@dataclass
class SourceBundle:
    """Per-source measurement state (atlas, RR atlas, engines)."""

    source: Address
    atlas: TracerouteAtlas
    rr_atlas: Optional[RRAtlas] = None
    engines: Dict[str, RevtrEngine] = field(default_factory=dict)
    #: reverse-segment cache shared by every segment_cache-enabled
    #: engine built for this source
    segcache: Optional[ReverseSegmentCache] = None


class Scenario:
    """One simulated Internet plus the revtr deployment around it."""

    def __init__(
        self,
        config: Optional[TopologyConfig] = None,
        seed: int = 0,
        atlas_size: int = 40,
        instrumentation=None,
    ) -> None:
        self.config = (
            config if config is not None else TopologyConfig.small(seed)
        )
        self.seed = seed
        self.atlas_size = atlas_size
        self.rng = random.Random(seed ^ 0xA11A5)

        #: one observability sink for the whole deployment (simulator,
        #: probers, engines); NULL unless passed or globally enabled
        self.obs = (
            instrumentation if instrumentation is not None else get_default()
        )

        self.internet: Internet = build_internet(self.config)
        self.pool = VantagePointPool(self.internet)
        self.clock = VirtualClock()
        if self.obs.tracer is not None and self.obs.tracer.clock is None:
            # Late-bind the sim clock so spans record sim durations.
            self.obs.tracer.clock = self.clock
        events = getattr(self.obs, "events", None)
        if events is not None and events.clock is None:
            # Same late-binding for flight-recorder sim timestamps.
            events.clock = self.clock
        attach(self.obs, self.internet)
        self.online_counter = ProbeCounter()
        self.background_counter = ProbeCounter()
        self.online_prober = Prober(
            self.internet, self.clock, self.online_counter,
            instrumentation=self.obs,
        )
        self.background_prober = Prober(
            self.internet, self.clock, self.background_counter,
            instrumentation=self.obs,
        )

        self.ip2as = IPToASMapper(self.internet)
        self.relationships = ASRelationships(self.internet.graph)
        self.itdk = build_itdk_dataset(self.internet)
        self.resolver = AliasResolver(itdk=self.itdk)

        self._directory: Optional[IngressDirectory] = None
        self._ranges = None
        self._adjacency: Optional[AdjacencyDatabase] = None
        self._bundles: Dict[Address, SourceBundle] = {}

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def spoofer_addrs(self) -> List[Address]:
        return [site.addr for site in self.pool.spoofers()]

    @property
    def mlab_addrs(self) -> List[Address]:
        return self.pool.mlab_addresses()

    @property
    def atlas_vp_addrs(self) -> List[Address]:
        return self.pool.atlas_addresses()

    def sources(self, count: Optional[int] = None) -> List[Address]:
        """M-Lab sources used as revtr targets (paper: 146 sites)."""
        addrs = self.mlab_addrs
        return addrs if count is None else addrs[:count]

    def responsive_destinations(
        self, count: Optional[int] = None, options_only: bool = False
    ) -> List[Address]:
        """Hitlist-style destinations, shuffled deterministically."""
        hosts = [
            host.addr
            for host in self.internet.hosts.values()
            if host.responds_to_ping
            and not host.is_vantage_point
            and (host.responds_to_options or not options_only)
        ]
        hosts.sort()
        self.rng.shuffle(hosts)
        return hosts if count is None else hosts[:count]

    # ------------------------------------------------------------------
    # Chaos harness
    # ------------------------------------------------------------------

    def install_faults(self, plan) -> "FaultInjector":
        """Bind a :class:`~repro.sim.faults.FaultPlan` to this
        scenario's Internet and clock; returns the live injector.

        Install *after* the background infrastructure you want built
        fault-free (atlases, surveys) — the injector affects every
        probe walked from the moment it is installed.
        """
        from repro.sim.faults import FaultInjector

        injector = FaultInjector(
            plan, self.clock, instrumentation=self.obs
        )
        self.internet.faults = injector
        return injector

    def install_vp_health(
        self,
        threshold: int = 3,
        quarantine_seconds: float = 900.0,
    ) -> "VPHealthTracker":
        """Attach a quarantine tracker to the online prober."""
        from repro.probing.vantage import VPHealthTracker

        tracker = VPHealthTracker(
            self.clock,
            threshold=threshold,
            quarantine_seconds=quarantine_seconds,
            instrumentation=self.obs,
        )
        self.online_prober.health = tracker
        return tracker

    # ------------------------------------------------------------------
    # Offline infrastructure (lazy, built with the background prober)
    # ------------------------------------------------------------------

    def ingress_directory(self) -> IngressDirectory:
        if self._directory is None:
            directory = IngressDirectory(
                self.internet,
                self.background_prober,
                self.spoofer_addrs,
                rng=random.Random(self.seed ^ 0x16E55),
            )
            directory.survey_all()
            self._directory = directory
        return self._directory

    def vp_ranges(self):
        if self._ranges is None:
            self._ranges = survey_vp_ranges(
                self.background_prober,
                self.spoofer_addrs,
                self.internet.host_prefixes(),
            )
        return self._ranges

    def adjacency_db(self, n_traceroutes: int = 400) -> AdjacencyDatabase:
        if self._adjacency is None:
            database = AdjacencyDatabase()
            sources = self.atlas_vp_addrs + self.mlab_addrs
            destinations = self.responsive_destinations()
            database.build_ark_style(
                self.background_prober,
                sources,
                destinations,
                n_traceroutes,
                random.Random(self.seed ^ 0xAD1),
            )
            self._adjacency = database
        return self._adjacency

    # ------------------------------------------------------------------
    # Per-source bundles
    # ------------------------------------------------------------------

    def bundle_rng(self, source: Address) -> random.Random:
        """The per-source RNG every atlas build for *source* draws from.

        Centralised so the lazy :meth:`bundle` build, the atlas
        pipeline, and the ``repro atlas`` CLI verbs all select the
        same VPs for the same ``(seed, source)``.
        """
        return random.Random(
            self.seed ^ zlib.crc32(source.encode()) & 0xFFFF
        )

    def bundle(self, source: Address) -> SourceBundle:
        bundle = self._bundles.get(source)
        if bundle is None:
            atlas = TracerouteAtlas(source, max_size=self.atlas_size)
            atlas.build(
                self.background_prober,
                self.atlas_vp_addrs,
                self.bundle_rng(source),
                size=self.atlas_size,
            )
            bundle = SourceBundle(source=source, atlas=atlas)
            self._bundles[source] = bundle
        return bundle

    def rr_atlas(self, source: Address) -> RRAtlas:
        bundle = self.bundle(source)
        if bundle.rr_atlas is None:
            rr_atlas = RRAtlas(bundle.atlas)
            rr_atlas.build(self.background_prober, self.spoofer_addrs)
            bundle.rr_atlas = rr_atlas
        return bundle.rr_atlas

    def atlas_pipeline(
        self,
        shards: int = 4,
        dedup: bool = True,
        threaded: bool = False,
    ) -> "AtlasPipeline":
        """An :class:`AtlasPipeline` over the background prober."""
        from repro.core.atlas_pipeline import AtlasPipeline

        return AtlasPipeline(
            self.background_prober,
            self.atlas_vp_addrs,
            self.spoofer_addrs,
            shards=shards,
            dedup=dedup,
            threaded=threaded,
            instrumentation=self.obs,
        )

    def adopt_atlases(
        self,
        source: Address,
        atlas: TracerouteAtlas,
        rr_atlas: Optional[RRAtlas] = None,
    ) -> SourceBundle:
        """Install externally built atlases (pipeline or snapshot) as
        *source*'s bundle, replacing any lazily built state."""
        if atlas.source != source:
            raise ValueError(
                f"atlas for {atlas.source} cannot serve source {source}"
            )
        bundle = SourceBundle(
            source=source, atlas=atlas, rr_atlas=rr_atlas
        )
        self._bundles[source] = bundle
        return bundle

    def save_atlases(self, source: Address, path: str) -> None:
        """Snapshot *source*'s bundle (atlas + RR atlas) to *path*."""
        from repro.core.atlas_pipeline import save_snapshot

        bundle = self.bundle(source)
        save_snapshot(
            path,
            bundle.atlas,
            bundle.rr_atlas,
            self.internet,
            instrumentation=self.obs,
        )

    def load_atlases(self, source: Address, path: str) -> SourceBundle:
        """Warm-start *source*'s bundle from a snapshot at *path*.

        Raises :class:`repro.core.atlas_pipeline.SnapshotError` (or
        :class:`~repro.core.atlas_pipeline.SnapshotMismatch`) when the
        file is unreadable or from a different topology/source.
        """
        from repro.core.atlas_pipeline import (
            SnapshotMismatch,
            load_snapshot,
        )

        atlas, rr_atlas = load_snapshot(
            path, self.internet, instrumentation=self.obs
        )
        if atlas.source != source:
            raise SnapshotMismatch(
                f"snapshot holds atlases for {atlas.source}, "
                f"not {source}"
            )
        return self.adopt_atlases(source, atlas, rr_atlas)

    # ------------------------------------------------------------------
    # Engines
    # ------------------------------------------------------------------

    def selector(self, variant: str):
        if "ingress" in variant or variant.startswith("revtr2"):
            return IngressSelector(self.ingress_directory())
        return SetCoverSelector(
            self.internet, self.vp_ranges(), self.spoofer_addrs
        )

    def global_selector(self) -> GlobalOrderSelector:
        return GlobalOrderSelector(self.vp_ranges(), self.spoofer_addrs)

    def engine_config(self, variant: str) -> EngineConfig:
        if variant == "revtr1.0":
            return legacy_engine_config()
        if variant == "revtr1.0+ingress":
            return legacy_engine_config()
        if variant == "revtr1.0+ingress+cache":
            return legacy_engine_config(use_cache=True)
        if variant == "revtr1.0+ingress+cache-TS":
            return legacy_engine_config(
                use_cache=True, use_timestamp=False
            )
        if variant == "revtr2.0":
            return EngineConfig()
        if variant == "revtr2.0+TS":
            return EngineConfig(use_timestamp=True)
        raise ValueError(f"unknown variant {variant!r}")

    def engine(
        self,
        source: Address,
        variant: str = "revtr2.0",
        config: Optional[EngineConfig] = None,
    ) -> RevtrEngine:
        """A fully wired engine for *variant*, cached per source."""
        bundle = self.bundle(source)
        if variant in bundle.engines and config is None:
            return bundle.engines[variant]
        engine_config = (
            config if config is not None else self.engine_config(variant)
        )
        rr_atlas = (
            self.rr_atlas(source) if engine_config.use_rr_atlas else None
        )
        adjacency = (
            self.adjacency_db() if engine_config.use_timestamp else None
        )
        segcache = None
        if engine_config.segment_cache:
            # Shared per source, like the deployed service: every
            # engine measuring toward this source amortizes the same
            # reverse segments.
            if bundle.segcache is None:
                bundle.segcache = ReverseSegmentCache(
                    self.clock, self.internet
                )
            segcache = bundle.segcache
        engine = RevtrEngine(
            prober=self.online_prober,
            source=source,
            atlas=bundle.atlas,
            selector=self.selector(variant),
            ip2as=self.ip2as,
            relationships=self.relationships,
            config=engine_config,
            rr_atlas=rr_atlas,
            resolver=self.resolver,
            adjacency=adjacency,
            cache=MeasurementCache(
                self.clock, enabled=engine_config.use_cache
            ),
            spoofers=self.spoofer_addrs,
            instrumentation=self.obs,
            segcache=segcache,
        )
        if config is None:
            bundle.engines[variant] = engine
        return engine
