"""§5.1: per-source completeness of the large-scale campaign.

The paper reports that revtr 2.0 could measure at least one reverse
path from destinations in 39,544 of 72,272 ASes overall; per source the
median is 35.4K ASes, 133 of 146 sources exceed 30K, and even the worst
M-Lab source still reaches 19K ASes (0.26 of the Internet) — far more
than any technique with comparable correctness.

This module measures the same distribution over the simulated fleet:
for every source, the fraction of ASes from which at least one
complete reverse traceroute was measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.stats import median
from repro.core.result import RevtrStatus
from repro.experiments.common import Scenario
from repro.net.addr import Address

#: Paper reference values.
PAPER_OVERALL_FRACTION = 39_544 / 72_272  # ~0.55
PAPER_WORST_SOURCE_FRACTION = 0.26


@dataclass
class CompletenessResult:
    #: source -> set size of ASes with >= 1 complete reverse path
    per_source_ases: Dict[Address, int]
    overall_ases: int
    total_ases: int
    destinations_attempted: int

    def per_source_fractions(self) -> List[float]:
        return sorted(
            count / self.total_ases
            for count in self.per_source_ases.values()
        )

    def overall_fraction(self) -> float:
        return self.overall_ases / self.total_ases

    def median_fraction(self) -> float:
        fractions = self.per_source_fractions()
        return median(fractions) if fractions else 0.0

    def worst_fraction(self) -> float:
        fractions = self.per_source_fractions()
        return fractions[0] if fractions else 0.0


def run(
    scenario: Scenario,
    n_destinations: int = 250,
    n_sources: int = 6,
) -> CompletenessResult:
    """Measure per-source AS completeness."""
    internet = scenario.internet
    destinations = scenario.responsive_destinations(n_destinations)
    total_ases = len(internet.graph)

    per_source: Dict[Address, set] = {}
    overall: set = set()
    for source in scenario.sources(n_sources):
        engine = scenario.engine(source, "revtr2.0")
        covered: set = set()
        for dst in destinations:
            result = engine.measure(dst)
            if result.status is not RevtrStatus.COMPLETE:
                continue
            for asn in scenario.ip2as.collapsed_as_path(
                result.addresses()
            ):
                covered.add(asn)
        per_source[source] = covered
        overall |= covered
    return CompletenessResult(
        per_source_ases={
            source: len(covered)
            for source, covered in per_source.items()
        },
        overall_ases=len(overall),
        total_ases=total_ases,
        destinations_attempted=len(destinations),
    )


def format_report(result: CompletenessResult) -> str:
    fractions = result.per_source_fractions()
    lines = [
        "§5.1 — per-source completeness (ASes seen on complete "
        "reverse paths)",
        f"ASes in topology: {result.total_ases}; destinations "
        f"attempted per source: {result.destinations_attempted}",
        f"overall: {result.overall_ases} ASes "
        f"({result.overall_fraction():.0%}; paper "
        f"{PAPER_OVERALL_FRACTION:.0%})",
        f"per-source: median {result.median_fraction():.0%}, "
        f"worst {result.worst_fraction():.0%} "
        f"(paper worst: {PAPER_WORST_SOURCE_FRACTION:.0%})",
    ]
    for fraction in fractions:
        lines.append(f"  source coverage: {fraction:.0%}")
    return "\n".join(lines)
