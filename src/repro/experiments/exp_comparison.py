"""The §5.2 head-to-head: revtr 2.0 vs revtr 1.0 and the ladder.

One campaign drives Table 4 (packets by type and component), Fig. 5a
(accuracy against direct traceroutes), Fig. 5b (coverage, including
the timestamp ablations of Appendix D.1), and Fig. 5c (latency).

Setup mirrors §5.2.1: destinations are RIPE-Atlas-like probes (they
answer record route and can run the direct traceroute used as
approximate ground truth), sources are M-Lab sites, and each system
variant gets the same vantage points and the same traceroute atlas.
The atlas is built from a *disjoint* half of the probe population so a
measured destination's own traceroute is never in the atlas.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.accuracy import PathComparison, compare_paths
from repro.analysis.stats import fraction_leq, median
from repro.core.adjacency import AdjacencyDatabase
from repro.core.atlas import TracerouteAtlas
from repro.core.result import ReverseTracerouteResult, RevtrStatus
from repro.core.revtr import RevtrEngine
from repro.core.rr_atlas import RRAtlas
from repro.experiments.common import Scenario
from repro.net.addr import Address
from repro.net.packet import TracerouteResult
from repro.probing.traceroute import paris_traceroute

#: The Table 4 ladder, in presentation order.
LADDER = (
    "revtr1.0",
    "revtr1.0+ingress",
    "revtr1.0+ingress+cache",
    "revtr1.0+ingress+cache-TS",
    "revtr2.0",
)

_PACKET_COLUMNS = ("rr", "spoof-rr", "ts", "spoof-ts")


@dataclass
class VariantOutcome:
    """Aggregates for one system variant over the campaign."""

    variant: str
    results: List[ReverseTracerouteResult] = field(default_factory=list)

    def coverage(self) -> float:
        """Fraction of attempted paths measured completely (Fig. 5b)."""
        attempted = [
            r
            for r in self.results
            if r.status is not RevtrStatus.UNRESPONSIVE
        ]
        if not attempted:
            return 0.0
        complete = sum(
            1
            for r in attempted
            if r.status is RevtrStatus.COMPLETE
        )
        return complete / len(attempted)

    def packet_counts(self) -> Dict[str, int]:
        """Online probes by type — one Table 4 row."""
        totals = {column: 0 for column in _PACKET_COLUMNS}
        for result in self.results:
            for column in _PACKET_COLUMNS:
                totals[column] += result.probe_counts.get(column, 0)
        totals["total"] = sum(totals[c] for c in _PACKET_COLUMNS)
        return totals

    def durations(self) -> List[float]:
        return [
            r.duration
            for r in self.results
            if r.status is not RevtrStatus.UNRESPONSIVE
        ]

    def median_duration(self) -> float:
        values = self.durations()
        return median(values) if values else float("nan")


@dataclass
class ComparisonCampaign:
    """Everything §5.2 derives its tables and figures from."""

    pairs: List[Tuple[Address, Address]]
    outcomes: Dict[str, VariantOutcome]
    #: direct traceroutes dst -> src (the accuracy reference)
    direct: Dict[Tuple[Address, Address], TracerouteResult]
    #: forward traceroutes src -> dst (for the forward-RR line)
    forward: Dict[Tuple[Address, Address], TracerouteResult]
    #: forward RR paths src -> dst that recorded the full path
    forward_rr: Dict[Tuple[Address, Address], List[Address]]
    scenario: Scenario

    def accuracy(
        self, variant: str
    ) -> List[PathComparison]:
        """Per-pair accuracy of a variant's complete paths (Fig. 5a)."""
        scenario = self.scenario
        comparisons = []
        for result in self.outcomes[variant].results:
            if result.status is not RevtrStatus.COMPLETE:
                continue
            trace = self.direct.get((result.dst, result.src))
            if trace is None or not trace.reached:
                continue
            comparison = compare_paths(
                result.addresses(),
                trace.hops,
                scenario.resolver,
                scenario.ip2as,
            )
            if comparison is not None:
                comparisons.append(comparison)
        return comparisons

    def forward_rr_accuracy(self) -> List[PathComparison]:
        """The forward-RR control line of Fig. 5a: a known-correct RR
        path compared against the same-direction traceroute."""
        comparisons = []
        for (src, dst), rr_path in self.forward_rr.items():
            trace = self.forward.get((src, dst))
            if trace is None or not trace.reached:
                continue
            comparison = compare_paths(
                rr_path,
                trace.hops,
                self.scenario.resolver,
                self.scenario.ip2as,
            )
            if comparison is not None:
                comparisons.append(comparison)
        return comparisons


def ground_truth_adjacencies(internet) -> AdjacencyDatabase:
    """A perfect adjacency database from simulator ground truth — the
    "+ TS + ground truth adj." row of Fig. 5b (Appendix D.1)."""
    database = AdjacencyDatabase()
    fake = TracerouteResult(src="0.0.0.0", dst="0.0.0.0")
    for router_id, neighbors in internet.adjacency.items():
        for neighbor_id, (egress, ingress) in neighbors.items():
            database._adjacent.setdefault(egress, set()).add(ingress)
            database._adjacent.setdefault(ingress, set()).add(egress)
    return database


def run(
    scenario: Scenario,
    n_pairs: int = 200,
    n_sources: int = 4,
    variants: Sequence[str] = LADDER,
    extra_ts_variants: bool = False,
    atlas_size: Optional[int] = None,
) -> ComparisonCampaign:
    """Run the comparison campaign.

    ``extra_ts_variants`` adds the two Fig. 5b TS rows (revtr2.0+TS and
    revtr2.0+TS with ground-truth adjacencies).
    """
    rng = random.Random(scenario.seed ^ 0xC04)
    atlas_size = (
        scenario.atlas_size if atlas_size is None else atlas_size
    )

    probes = list(scenario.atlas_vp_addrs)
    rng.shuffle(probes)
    half = max(1, len(probes) // 2)
    atlas_pool, destination_pool = probes[:half], probes[half:]
    sources = scenario.sources(n_sources)

    pairs: List[Tuple[Address, Address]] = []
    while len(pairs) < n_pairs:
        pairs.append(
            (rng.choice(destination_pool), rng.choice(sources))
        )

    # Per-source atlases from the disjoint pool, plus RR atlases.
    atlases: Dict[Address, TracerouteAtlas] = {}
    rr_atlases: Dict[Address, RRAtlas] = {}
    for source in sources:
        atlas = TracerouteAtlas(source, max_size=atlas_size)
        atlas.build(
            scenario.background_prober,
            atlas_pool,
            random.Random(
                scenario.seed ^ zlib.crc32(source.encode()) & 0xFFF
            ),
            size=atlas_size,
        )
        atlases[source] = atlas
        rr_atlas = RRAtlas(atlas)
        rr_atlas.build(
            scenario.background_prober, scenario.spoofer_addrs
        )
        rr_atlases[source] = rr_atlas

    # Reference measurements (charged to the background).
    direct: Dict[Tuple[Address, Address], TracerouteResult] = {}
    forward: Dict[Tuple[Address, Address], TracerouteResult] = {}
    forward_rr: Dict[Tuple[Address, Address], List[Address]] = {}
    for dst, src in dict.fromkeys(pairs):
        direct[(dst, src)] = paris_traceroute(
            scenario.background_prober, dst, src
        )
        forward[(src, dst)] = paris_traceroute(
            scenario.background_prober, src, dst
        )
        result = scenario.background_prober.rr_ping(src, dst)
        index = result.destination_stamp_index()
        if result.responded and index is not None:
            forward_rr[(src, dst)] = result.slots[: index + 1]

    all_variants = list(variants)
    if extra_ts_variants:
        all_variants += ["revtr2.0+TS", "revtr2.0+TS+truth"]

    truth_adjacency = (
        ground_truth_adjacencies(scenario.internet)
        if extra_ts_variants
        else None
    )

    outcomes: Dict[str, VariantOutcome] = {}
    for variant in all_variants:
        outcome = VariantOutcome(variant=variant)
        engines: Dict[Address, RevtrEngine] = {}
        base_variant = (
            "revtr2.0+TS" if variant.endswith("+truth") else variant
        )
        config = scenario.engine_config(base_variant)
        for source in sources:
            adjacency = None
            if config.use_timestamp:
                if variant.endswith("+truth"):
                    adjacency = truth_adjacency
                else:
                    adjacency = scenario.adjacency_db()
            engines[source] = RevtrEngine(
                prober=scenario.online_prober,
                source=source,
                atlas=atlases[source],
                selector=scenario.selector(base_variant),
                ip2as=scenario.ip2as,
                relationships=scenario.relationships,
                config=config,
                rr_atlas=(
                    rr_atlases[source] if config.use_rr_atlas else None
                ),
                resolver=scenario.resolver,
                adjacency=adjacency,
                spoofers=scenario.spoofer_addrs,
            )
        for dst, src in pairs:
            outcome.results.append(engines[src].measure(dst))
        outcomes[variant] = outcome

    return ComparisonCampaign(
        pairs=pairs,
        outcomes=outcomes,
        direct=direct,
        forward=forward,
        forward_rr=forward_rr,
        scenario=scenario,
    )


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------

#: Paper Table 4 rows (packets for 8,093 reverse traceroutes).
PAPER_TABLE4 = {
    "revtr1.0": (14_952, 220_186, 35_961, 4_130),
    "revtr1.0+ingress": (13_669, 97_400, 35_745, 3_810),
    "revtr1.0+ingress+cache": (12_708, 64_310, 35_765, 3_925),
    "revtr1.0+ingress+cache-TS": (12_690, 64_435, 0, 0),
    "revtr2.0": (11_831, 61_080, 0, 0),
}

#: Paper Fig. 5b coverage rows.
PAPER_COVERAGE = {
    "revtr1.0": 1.000,
    "revtr2.0": 0.781,
    "revtr2.0+TS": 0.782,
    "revtr2.0+TS+truth": 0.792,
}

#: Paper Fig. 5c medians (seconds).
PAPER_MEDIAN_LATENCY = {"revtr1.0": 78.0, "revtr2.0": 6.0}


def format_table4(campaign: ComparisonCampaign) -> str:
    lines = [
        "Table 4 — online packets by type and system component",
        f"{'variant':28s}{'RR':>8}{'SpoofRR':>9}{'TS':>8}"
        f"{'SpoofTS':>9}{'total':>9}{'vs 1.0':>8}",
    ]
    base_total = None
    for variant in LADDER:
        outcome = campaign.outcomes.get(variant)
        if outcome is None:
            continue
        counts = outcome.packet_counts()
        if base_total is None:
            base_total = max(1, counts["total"])
        lines.append(
            f"{variant:28s}{counts['rr']:8d}{counts['spoof-rr']:9d}"
            f"{counts['ts']:8d}{counts['spoof-ts']:9d}"
            f"{counts['total']:9d}"
            f"{counts['total'] / base_total:8.0%}"
        )
    lines.append(
        "(paper: revtr 2.0 sends 26% as many probes as revtr 1.0; "
        "most savings from ingress-based VP selection)"
    )
    return "\n".join(lines)


def format_fig5a(campaign: ComparisonCampaign) -> str:
    lines = ["Fig 5a — accuracy against the direct traceroute"]
    for variant in ("revtr1.0", "revtr2.0"):
        if variant not in campaign.outcomes:
            continue
        comparisons = campaign.accuracy(variant)
        if not comparisons:
            continue
        n = len(comparisons)
        as_exact = sum(1 for c in comparisons if c.as_exact) / n
        missing = sum(1 for c in comparisons if c.as_missing_only) / n
        correct = sum(1 for c in comparisons if c.as_correct) / n
        router = median([c.router_fraction for c in comparisons])
        optimistic = median(
            [c.router_fraction_optimistic for c in comparisons]
        )
        lines.append(
            f"  {variant:10s}: n={n}  "
            f"AS exact {as_exact:.1%}  missing-only {missing:.1%}  "
            f"AS correct {correct:.1%}  "
            f"router median {router:.2f}  optimistic {optimistic:.2f}"
        )
    forward = campaign.forward_rr_accuracy()
    if forward:
        lines.append(
            f"  forward-RR: n={len(forward)}  router median "
            f"{median([c.router_fraction for c in forward]):.2f}"
        )
    lines.append(
        "(paper: revtr2.0 AS exact 92.3% vs 81.8% for 1.0; "
        "router median 0.67, optimistic band up to 0.68; "
        "forward-RR 0.60)"
    )
    return "\n".join(lines)


def format_fig5b(campaign: ComparisonCampaign) -> str:
    lines = [
        "Fig 5b — coverage (complete paths / attempted)",
        f"{'variant':24s}{'measured':>10}{'paper':>8}",
    ]
    for variant, paper in PAPER_COVERAGE.items():
        outcome = campaign.outcomes.get(variant)
        if outcome is None:
            continue
        lines.append(
            f"{variant:24s}{outcome.coverage():10.3f}{paper:8.3f}"
        )
    return "\n".join(lines)


def format_fig5c(campaign: ComparisonCampaign) -> str:
    lines = [
        "Fig 5c — per-measurement latency (virtual seconds)",
        f"{'variant':28s}{'median':>9}{'p90':>9}",
    ]
    from repro.analysis.stats import percentile

    for variant in LADDER:
        outcome = campaign.outcomes.get(variant)
        if outcome is None:
            continue
        durations = outcome.durations()
        if not durations:
            continue
        lines.append(
            f"{variant:28s}{median(durations):9.2f}"
            f"{percentile(durations, 90):9.2f}"
        )
    lines.append(
        "(paper: median 78 s for revtr 1.0 vs 6 s for revtr 2.0, "
        "driven by 10 s spoofed-batch timeouts)"
    )
    return "\n".join(lines)


def throughput_projections(campaign: ComparisonCampaign):
    """§5.2.4 throughput projection from the measured probe costs."""
    from repro.analysis.throughput import project_throughput

    n_vps = len(campaign.scenario.spoofer_addrs)
    projections = []
    for variant in ("revtr1.0", "revtr2.0"):
        outcome = campaign.outcomes.get(variant)
        if outcome is None:
            continue
        counts = outcome.packet_counts()
        projections.append(
            project_throughput(
                variant,
                counts["total"],
                len(outcome.results),
                n_vps,
            )
        )
    return projections


def format_throughput(campaign: ComparisonCampaign) -> str:
    from repro.analysis.throughput import format_projection_table

    projections = throughput_projections(campaign)
    # Also show the paper-scale fleet (146 sites) for comparability.
    scaled = [p.scaled_to(146) for p in projections]
    local = format_projection_table(projections)
    at_scale = format_projection_table(scaled)
    return (
        local
        + "\n\nscaled to the paper's 146-site fleet:\n"
        + at_scale
    )
