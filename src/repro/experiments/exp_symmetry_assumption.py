"""Table 2: how often the penultimate traceroute hop is on the
reverse path (§4.4).

Methodology, mirroring the paper:

* targets are the /30 peers of SNMPv3-responsive router addresses
  (probing the other side of a point-to-point link likely traverses
  the responsive router);
* for each target R and a random M-Lab source S, spoofed RR probes
  reveal reverse hops from R toward S;
* the penultimate hop P of the forward traceroute S→R is classified:
  **on** the reverse path if P (or an alias, via SNMPv3) appears among
  the reverse hops; **not on** if P is SNMPv3-responsive (reliable
  alias ground truth) yet absent; **unknown** otherwise;
* rows split by whether the (P, R) link is intradomain or interdomain.

The paper finds intradomain links symmetric 90% of the time and
interdomain ones only 57% — the evidence behind Q5's abort policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.alias.snmp import SnmpResolver
from repro.core.ingress import IngressSelector
from repro.core.symmetry import LinkType
from repro.experiments.common import Scenario
from repro.net.addr import Address, is_private, slash30_peer
from repro.probing.traceroute import paris_traceroute

#: Paper reference values (Table 2): P(on reverse | on+not on).
PAPER_INTRADOMAIN = 0.90
PAPER_INTERDOMAIN = 0.57
PAPER_ALL = 0.81


@dataclass
class SymmetryCounts:
    yes: int = 0
    no: int = 0
    unknown: int = 0

    def rate(self) -> Optional[float]:
        decided = self.yes + self.no
        if decided == 0:
            return None
        return self.yes / decided

    def total(self) -> int:
        return self.yes + self.no + self.unknown

    def fractions(self) -> Tuple[float, float, float]:
        total = max(1, self.total())
        return (
            self.yes / total,
            self.no / total,
            self.unknown / total,
        )


@dataclass
class Table2Result:
    intra: SymmetryCounts = field(default_factory=SymmetryCounts)
    inter: SymmetryCounts = field(default_factory=SymmetryCounts)
    paths_evaluated: int = 0

    @property
    def all_counts(self) -> SymmetryCounts:
        return SymmetryCounts(
            yes=self.intra.yes + self.inter.yes,
            no=self.intra.no + self.inter.no,
            unknown=self.intra.unknown + self.inter.unknown,
        )


def _targets_from_snmp(scenario: Scenario, limit: int) -> List[Address]:
    """The /30 peers of SNMPv3-responsive addresses (§4.4 dataset).

    Candidates are shuffled so the target population spans the whole
    hierarchy — edge access links vastly outnumber core links, exactly
    as in the Internet-wide SNMPv3 responder set the paper samples.
    """
    from repro.topology.asgraph import ASTier

    snmp = SnmpResolver(scenario.background_prober)
    rng = random.Random(scenario.seed ^ 0x5A47)
    internet = scenario.internet
    edge: List[Address] = []
    core: List[Address] = []
    for addr in sorted(internet.iface_owner):
        peer = slash30_peer(addr)
        if peer is None or peer not in internet.iface_owner:
            continue
        owner = internet.routers[internet.iface_owner[peer]]
        tier = internet.graph.nodes[owner.asn].tier
        (edge if tier is ASTier.STUB else core).append(addr)
    rng.shuffle(edge)
    rng.shuffle(core)
    # The Internet-wide SNMPv3 responder population is dominated by
    # edge/access links by orders of magnitude; sample accordingly.
    candidates = edge[: int(limit * 2)] + core[: max(1, limit // 8)]
    rng.shuffle(candidates)
    targets: List[Address] = []
    for addr in candidates:
        if len(targets) >= limit:
            break
        if snmp.engine_id(addr) is not None:
            targets.append(slash30_peer(addr))
    return targets


def _refined_mapper(scenario: Scenario):
    """An IP-to-AS mapper refined with bdrmapit-lite border overrides.

    The paper's intra/interdomain decision rests on a layered mapping
    that classifies border interfaces correctly far more often than
    naive prefix-origin lookup (Appendix B.2 validates it against
    bdrmapIT, which would change well under 1% of decisions). The
    refinement is computed from an offline traceroute corpus, exactly
    as bdrmapit would be.
    """
    from repro.asmap.bdrmapit import BdrmapitLite
    from repro.asmap.ip2as import IPToASMapper

    rng = random.Random(scenario.seed ^ 0xB0D)
    corpus = []
    destinations = list(scenario.responsive_destinations(300))
    # Ark probes every routed /24, so link interfaces show up as
    # traceroute destinations too; include a sample of them.
    ifaces = sorted(scenario.internet.iface_owner)
    rng.shuffle(ifaces)
    destinations += ifaces[:600]
    sources = scenario.atlas_vp_addrs + scenario.mlab_addrs
    for dst in destinations:
        src = rng.choice(sources)
        corpus.append(
            paris_traceroute(scenario.background_prober, src, dst)
        )
    mapper = IPToASMapper(scenario.internet)
    overrides = BdrmapitLite(mapper, min_observations=2).infer(corpus)
    mapper.apply_overrides(overrides)
    return mapper


def run(
    scenario: Scenario,
    max_targets: int = 250,
    sources_per_target: int = 2,
) -> Table2Result:
    """Run the Table 2 study."""
    rng = random.Random(scenario.seed ^ 0x7AB2)
    prober = scenario.online_prober
    snmp = SnmpResolver(scenario.background_prober)
    selector = IngressSelector(scenario.ingress_directory())
    mapper = _refined_mapper(scenario)
    result = Table2Result()

    targets = _targets_from_snmp(scenario, max_targets)
    sources = scenario.sources()

    for target in targets:
        for source in rng.sample(
            sources, k=min(sources_per_target, len(sources))
        ):
            reverse_hops = _reverse_hops(
                prober, selector, scenario, source, target
            )
            if not reverse_hops:
                continue
            trace = paris_traceroute(prober, source, target)
            hops = trace.responsive_hops()
            if not trace.reached or len(hops) < 2:
                continue
            penultimate = (
                hops[-2] if hops[-1] == target else hops[-1]
            )
            if penultimate == target:
                continue
            result.paths_evaluated += 1
            link = _classify(mapper, penultimate, target)
            counts = (
                result.intra if link is LinkType.INTRA else result.inter
            )
            verdict = _on_reverse_path(
                snmp, scenario.resolver, penultimate, reverse_hops
            )
            if verdict is True:
                counts.yes += 1
            elif verdict is False:
                counts.no += 1
            else:
                counts.unknown += 1
    return result


def _reverse_hops(
    prober, selector, scenario: Scenario, source: Address, target: Address
) -> List[Address]:
    """Reveal reverse hops with spoofed RR from the closest VPs.

    §4.4 explicitly uses the ingress-based VP selection so the
    destination stamp lands early and several reverse slots remain —
    a direct probe from the (distant) source would truncate the
    reverse path right after the target's own stamp.
    """
    best_hops: List[Address] = []
    for batch in selector.batches(target)[:3]:
        vps = [vp for vp in batch if vp != source]
        if not vps:
            continue
        results = prober.spoofed_rr_batch(vps, target, spoof_as=source)
        best = max(results, key=lambda r: len(r.reverse_hops()))
        if len(best.reverse_hops()) > len(best_hops):
            best_hops = best.reverse_hops()
        if len(best_hops) >= 2:
            return best_hops
    if not best_hops:
        result = prober.rr_ping(source, target)
        if result.responded:
            best_hops = result.reverse_hops()
    return best_hops


def _classify(
    mapper, penultimate: Address, target: Address
) -> LinkType:
    same = mapper.same_as(penultimate, target)
    if same is None:
        return LinkType.INTER
    return LinkType.INTRA if same else LinkType.INTER


def _on_reverse_path(
    snmp: SnmpResolver,
    resolver,
    penultimate: Address,
    reverse_hops: List[Address],
) -> Optional[bool]:
    """The paper's three-way verdict.

    "Yes" when the penultimate hop or an alias appears among the
    reverse hops; "no" only when reliable alias information exists for
    the penultimate hop (SNMPv3 engine id, or presence in the
    MIDAR-based ITDK dataset) and the reverse path visibly extends past
    the position where it would appear; "unknown" otherwise.
    """
    if penultimate in reverse_hops:
        return True
    peer = slash30_peer(penultimate)
    if peer is not None and peer in reverse_hops:
        return True
    engine = snmp.engine_id(penultimate)
    if engine is not None:
        for hop in reverse_hops:
            if snmp.engine_id(hop) == engine:
                return True
    if resolver is not None and resolver.can_resolve(penultimate):
        if any(
            resolver.aligned(hop, penultimate) for hop in reverse_hops
        ):
            return True
    if len(reverse_hops) < 2:
        # Only the target's own stamp fit in the option: the reverse
        # path is truncated before the hop in question could appear.
        return None
    if is_private(reverse_hops[1]):
        # The router adjacent to the target — where the penultimate
        # hop would appear — hid behind a private stamp; absence is
        # not conclusive.
        return None
    has_reliable_aliases = engine is not None or (
        resolver is not None and resolver.can_resolve(penultimate)
    )
    if not has_reliable_aliases:
        return None
    return False


def format_report(result: Table2Result) -> str:
    """Render the Table 2 rows with paper references."""
    lines = [
        "Table 2 — penultimate traceroute hop on the reverse path",
        f"paths evaluated: {result.paths_evaluated}",
        f"{'':14s}{'Yes':>8}{'No':>8}{'Unk':>8}{'Yes/(Y+N)':>12}{'paper':>8}",
    ]
    rows = [
        ("Intradomain", result.intra, PAPER_INTRADOMAIN),
        ("Interdomain", result.inter, PAPER_INTERDOMAIN),
        ("All", result.all_counts, PAPER_ALL),
    ]
    for name, counts, paper in rows:
        yes, no, unknown = counts.fractions()
        rate = counts.rate()
        rate_text = f"{rate:.2f}" if rate is not None else "n/a"
        lines.append(
            f"{name:14s}{yes:8.2f}{no:8.2f}{unknown:8.2f}"
            f"{rate_text:>12}{paper:8.2f}"
        )
    return "\n".join(lines)
