"""§6.1 / Fig. 7: ingress traffic engineering with reverse traceroutes.

The PEERING case study, re-run on the simulator:

1. anycast a prefix from several sites and use reverse traceroutes to
   map which site each client lands at and through which transit;
2. find a transit carrying clients to a high-latency site and poison it
   on that site's announcement — the clients shift and their RTT drops
   (Fig. 7 left: the Cogent/UFMG→NEU move);
3. rebalance the load between a site's providers with no-export
   communities (Fig. 7 right: the Coloclue/BIT split).

Each reconfiguration costs 15 virtual minutes of BGP convergence plus
an atlas refresh, matching the paper's 9–13-minute measurement rounds
within ~30-minute iterations.

Substitution note: the paper monitors 15,300 ingress routers chosen by
client activity; we monitor a deterministic sample of responsive hosts
— the catchment/transit observables are identical.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.atlas import TracerouteAtlas
from repro.core.result import RevtrStatus
from repro.core.revtr import EngineConfig, RevtrEngine
from repro.core.rr_atlas import RRAtlas
from repro.experiments.common import Scenario
from repro.net.addr import Address
from repro.te.engineering import CatchmentReport, TrafficEngineer
from repro.te.peering import AnycastDeployment, PeeringTestbed


@dataclass
class TERound:
    label: str
    report: CatchmentReport

    def summary(self, ip2as=None) -> Dict[str, object]:
        return {
            "sites": self.report.site_shares(),
        }


@dataclass
class TEResult:
    rounds: List[TERound]
    poisoned_transit: Optional[int]
    shifted_share_before: float = 0.0
    shifted_share_after: float = 0.0
    #: destinations routed through the poisoned transit to the
    #: majority site, before/after the poisoning (absolute counts)
    majority_clients_before: int = 0
    majority_clients_after: int = 0
    rtt_before: float = 0.0
    rtt_after: float = 0.0
    no_export_pairs: Tuple[Tuple[int, int], ...] = ()
    provider_shares_before: Dict[int, float] = field(
        default_factory=dict
    )
    provider_shares_after: Dict[int, float] = field(
        default_factory=dict
    )


def _fresh_engine(
    scenario: Scenario, source: Address, tag: int
) -> RevtrEngine:
    """A revtr 2.0 engine with an atlas built under the *current*
    announcement (the per-round atlas refresh of §6.1)."""
    atlas = TracerouteAtlas(source, max_size=scenario.atlas_size)
    atlas.build(
        scenario.background_prober,
        scenario.atlas_vp_addrs,
        random.Random(scenario.seed ^ tag),
        size=scenario.atlas_size,
    )
    rr_atlas = RRAtlas(atlas)
    rr_atlas.build(scenario.background_prober, scenario.spoofer_addrs)
    return RevtrEngine(
        prober=scenario.online_prober,
        source=source,
        atlas=atlas,
        selector=scenario.selector("revtr2.0"),
        ip2as=scenario.ip2as,
        relationships=scenario.relationships,
        config=EngineConfig(),
        rr_atlas=rr_atlas,
        resolver=scenario.resolver,
        spoofers=scenario.spoofer_addrs,
    )


def _entry_providers(
    scenario: Scenario,
    report: CatchmentReport,
    site_asns: Tuple[int, ...],
) -> Counter:
    """Which AS hands each measured path into its catchment site."""
    counts: Counter = Counter()
    for dst, transits in report.transits_of.items():
        if report.site_of.get(dst) is None:
            continue
        if transits:
            counts[transits[-1]] += 1
    return counts


def run(
    scenario: Scenario,
    n_monitors: int = 80,
    n_sites: int = 2,
) -> TEResult:
    """Run the full Fig. 7 engineering loop."""
    rng = random.Random(scenario.seed ^ 0x7E)
    internet = scenario.internet
    source = scenario.sources()[0]
    site_asns = [
        internet.hosts[addr].asn
        for addr in scenario.sources(n_sites + 1)[1:]
    ]
    testbed = PeeringTestbed(internet)
    deployment = testbed.deploy(source, site_asns)
    engineer_tag = 0

    try:
        monitors = scenario.responsive_destinations(
            n_monitors, options_only=True
        )
        rounds: List[TERound] = []

        def measure(label: str) -> CatchmentReport:
            nonlocal engineer_tag
            engineer_tag += 1
            engine = _fresh_engine(scenario, source, engineer_tag)
            engineer = TrafficEngineer(
                testbed, engine, scenario.online_prober, scenario.ip2as
            )
            report = engineer.measure_round(deployment, monitors)
            rounds.append(TERound(label=label, report=report))
            return report

        baseline = measure("anycast baseline")

        # --- Fig. 7 left: steer a suboptimal transit's clients -------
        transit_rtt: Dict[int, List[float]] = {}
        transit_site: Dict[int, Counter] = {}
        for dst, transits in baseline.transits_of.items():
            site = baseline.site_of.get(dst)
            rtt = baseline.rtt_of.get(dst)
            if site is None or rtt is None:
                continue
            for transit in transits:
                transit_rtt.setdefault(transit, []).append(rtt)
                transit_site.setdefault(transit, Counter())[site] += 1
        candidates = [
            (sum(rtts) / len(rtts), transit)
            for transit, rtts in transit_rtt.items()
            if len(rtts) >= 3 and transit not in deployment.site_asns
        ]
        poisoned_transit: Optional[int] = None
        shifted_before = shifted_after = 0.0
        majority_before = majority_after = 0
        rtt_before = rtt_after = 0.0
        if candidates:
            _, poisoned_transit = max(candidates)
            majority_site = transit_site[poisoned_transit].most_common(
                1
            )[0][0]
            affected = baseline.destinations_through(poisoned_transit)
            majority_before = sum(
                1
                for dst in affected
                if baseline.site_of.get(dst) == majority_site
            )
            shifted_before = majority_before / max(1, len(affected))
            rtt_before = _mean_ping_rtt(scenario, source, affected)
            # Poison the transit on the majority site's announcement.
            origins = []
            for origin in deployment.spec().origins:
                pass
            new_origins = tuple(
                (asn, frozenset({poisoned_transit}))
                if asn == majority_site
                else (asn, frozenset())
                for asn in deployment.site_asns
            )
            from repro.topology.policy import Origin

            deployment.prepends = dict(deployment.prepends)
            # Rebuild the spec with per-origin poisoning.
            deployment_spec_origins = tuple(
                Origin(
                    asn,
                    prepend=deployment.prepends.get(asn, 0),
                    poisoned=poison,
                )
                for asn, poison in new_origins
            )
            _announce_custom(
                testbed, deployment, deployment_spec_origins
            )
            scenario.clock.advance(15 * 60.0)

            after = measure(
                f"poisoned AS{poisoned_transit} at site "
                f"{majority_site}"
            )
            still_through = after.destinations_through(
                poisoned_transit
            )
            majority_after = sum(
                1
                for dst in still_through
                if after.site_of.get(dst) == majority_site
            )
            shifted_after = majority_after / max(
                1, len(still_through)
            )
            rtt_after = _mean_ping_rtt(scenario, source, affected)

        # --- Fig. 7 right: balance a site's providers ----------------
        # The paper needed several rounds: blocking Fusix made it
        # reroute through True (still via Coloclue), so a second
        # no-export was added. We iterate the same way: block the top
        # provider's biggest feeder, re-measure, repeat until the top
        # provider's entry share drops or we run out of rounds.
        report = rounds[-1].report
        providers_before = _entry_providers(
            scenario, report, deployment.site_asns
        )
        providers_after = providers_before
        no_export_pairs: List[Tuple[int, int]] = []
        if providers_before:
            top_provider, top_count = providers_before.most_common(1)[
                0
            ]
            engineer = TrafficEngineer(
                testbed,
                _fresh_engine(scenario, source, 999),
                scenario.online_prober,
                scenario.ip2as,
            )
            current_report = report
            for _ in range(3):
                feeders: Counter = Counter()
                for dst, transits in current_report.transits_of.items():
                    transits = list(transits)
                    if top_provider in transits:
                        index = transits.index(top_provider)
                        if index > 0:
                            feeders[transits[index - 1]] += 1
                feeders = Counter(
                    {
                        asn: count
                        for asn, count in feeders.items()
                        if (top_provider, asn) not in no_export_pairs
                    }
                )
                if not feeders:
                    break
                feeder, _ = feeders.most_common(1)[0]
                no_export_pairs.append((top_provider, feeder))
                engineer.no_export(deployment, top_provider, feeder)
                balanced = measure(
                    f"no-export AS{top_provider}→AS{feeder}"
                )
                current_report = balanced
                providers_after = _entry_providers(
                    scenario, balanced, deployment.site_asns
                )
                new_count = providers_after.get(top_provider, 0)
                if new_count < top_count:
                    break

        def shares(counts: Counter) -> Dict[int, float]:
            total = sum(counts.values())
            if not total:
                return {}
            return {
                asn: count / total
                for asn, count in counts.most_common(6)
            }

        return TEResult(
            rounds=rounds,
            poisoned_transit=poisoned_transit,
            shifted_share_before=shifted_before,
            shifted_share_after=shifted_after,
            majority_clients_before=majority_before,
            majority_clients_after=majority_after,
            rtt_before=rtt_before,
            rtt_after=rtt_after,
            no_export_pairs=tuple(no_export_pairs),
            provider_shares_before=shares(providers_before),
            provider_shares_after=shares(providers_after),
        )
    finally:
        testbed.withdraw(deployment)


def _mean_ping_rtt(
    scenario: Scenario, source: Address, dests
) -> float:
    """Mean ping RTT from the anycast source to *dests* (seconds).

    Pings follow the current announcement: after a reconfiguration the
    reply path — and therefore the RTT — reflects the new catchments.
    """
    rtts = []
    for dst in dests:
        reply = scenario.online_prober.ping(source, dst)
        if reply is not None:
            rtts.append(reply.rtt)
    return sum(rtts) / len(rtts) if rtts else float("nan")


def _announce_custom(
    testbed: PeeringTestbed,
    deployment: AnycastDeployment,
    origins,
) -> None:
    """Install a spec with per-origin poisoning."""
    from repro.topology.policy import AnnouncementSpec

    spec = AnnouncementSpec(
        origins=origins,
        poisoned=deployment.poisoned,
        no_export=deployment.no_export,
    )
    internet = testbed.internet
    internet.announcements[deployment.prefix] = spec
    internet.anycast_anchors[deployment.prefix] = {
        asn: testbed._anchor_for(asn) for asn in deployment.site_asns
    }
    internet.invalidate_routing()


def format_report(result: TEResult) -> str:
    lines = ["Fig 7 — traffic engineering with revtr 2.0"]
    for te_round in result.rounds:
        shares = te_round.report.site_shares()
        rendered = ", ".join(
            f"AS{site}: {share:.0%}"
            for site, share in sorted(shares.items())
        )
        lines.append(f"  [{te_round.label}] catchments: {rendered}")
    if result.poisoned_transit is not None:
        lines.append(
            f"poisoned transit AS{result.poisoned_transit}: clients "
            f"reaching the majority site through it "
            f"{result.majority_clients_before} -> "
            f"{result.majority_clients_after} "
            f"({result.shifted_share_before:.0%} -> "
            f"{result.shifted_share_after:.0%} of its clients)"
        )
        lines.append(
            f"mean RTT of affected clients: "
            f"{result.rtt_before * 1000:.0f}ms -> "
            f"{result.rtt_after * 1000:.0f}ms "
            "(paper: -70 to -99 ms for Cogent clients)"
        )
    if result.no_export_pairs:
        lines.append(
            "no-export applied: "
            + ", ".join(
                f"AS{a}-/->AS{b}" for a, b in result.no_export_pairs
            )
        )
        lines.append(
            f"entry-provider shares before: "
            f"{_fmt_shares(result.provider_shares_before)}"
        )
        lines.append(
            f"entry-provider shares after:  "
            f"{_fmt_shares(result.provider_shares_after)}"
        )
        lines.append(
            "(paper: 91.2%:8.8% Coloclue:BIT -> 60.5%:39.5%)"
        )
    return "\n".join(lines)


def _fmt_shares(shares: Dict[int, float]) -> str:
    return ", ".join(
        f"AS{asn}: {share:.0%}" for asn, share in shares.items()
    )
