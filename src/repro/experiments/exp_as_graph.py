"""Table 3: reverse-AS-graph correctness and completeness (§5.1).

Three ways to learn the AS links the Internet uses toward a source:

* **revtr 2.0** — measure reverse paths from destinations everywhere;
* **RIPE Atlas** — direct traceroutes, but only from the few networks
  hosting probes;
* **forward traceroutes + assume symmetry** — reverse every forward
  path.

The paper reports correctness 1.00 / 1.00 / 0.60 and completeness
0.55 / 0.06 / 0.78. The simulator additionally lets us *verify* the
links of all three techniques against ground truth, rather than taking
the first two as correct by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.coverage import ASGraphScore, score_as_graph
from repro.core.result import RevtrStatus
from repro.experiments.common import Scenario
from repro.net.addr import Address
from repro.probing.traceroute import paris_traceroute

#: Paper reference values: technique -> (correctness, completeness).
PAPER = {
    "revtr2.0": (1.00, 0.55),
    "ripe-atlas": (1.00, 0.06),
    "forward+symmetric": (0.60, 0.78),
}


@dataclass
class Table3Result:
    scores: Dict[str, ASGraphScore]
    total_ases: int

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """(technique, paper-style correctness, completeness, verified).

        The paper takes revtr and Atlas links as correct because both
        directly measure the path; the forward+symmetric technique is
        scored by how often the assumption holds. The last column is
        the simulator-verified correctness (ground-truth links), which
        the deployed system cannot compute — it differs from 1.0 only
        through IP-to-AS mapping noise on measured addresses.
        """
        rows = []
        for name, score in self.scores.items():
            verified = score.correctness()
            paper_style = (
                verified if name == "forward+symmetric" else 1.0
            )
            rows.append(
                (
                    name,
                    paper_style,
                    score.completeness(self.total_ases),
                    verified,
                )
            )
        return rows


def _truth_links(
    scenario: Scenario, source: Address, destinations: Sequence[Address]
) -> Set[Tuple[int, int]]:
    """Ground-truth directed AS links on reverse paths toward source."""
    internet = scenario.internet
    links: Set[Tuple[int, int]] = set()
    for dst in destinations:
        path = internet.ground_truth_router_path(dst, source)
        as_path: List[int] = []
        for router_id in path:
            asn = internet.routers[router_id].asn
            if not as_path or as_path[-1] != asn:
                as_path.append(asn)
        for here, nxt in zip(as_path, as_path[1:]):
            links.add((here, nxt))
    return links


def run(
    scenario: Scenario,
    n_destinations: int = 250,
    n_sources: int = 3,
    atlas_probe_fraction: float = 0.06,
) -> Table3Result:
    """Run the Table 3 comparison.

    ``atlas_probe_fraction`` scales the RIPE-Atlas technique's probe
    population to the real-world density (probes in ~6% of ASes).
    """
    rng = random.Random(scenario.seed ^ 0x7A3)
    internet = scenario.internet
    sources = scenario.sources(n_sources)
    destinations = scenario.responsive_destinations(n_destinations)
    total_ases = len(internet.graph)
    n_probes = max(2, int(total_ases * atlas_probe_fraction))
    probe_pool = list(scenario.atlas_vp_addrs)
    rng.shuffle(probe_pool)
    probe_pool = probe_pool[:n_probes]

    revtr_paths: List[List[int]] = []
    atlas_paths: List[List[int]] = []
    forward_paths: List[List[int]] = []
    truth: Set[Tuple[int, int]] = set()

    for source in sources:
        truth |= _truth_links(scenario, source, destinations)
        engine = scenario.engine(source, "revtr2.0")

        for dst in destinations:
            result = engine.measure(dst)
            if result.status is RevtrStatus.COMPLETE:
                revtr_paths.append(
                    scenario.ip2as.collapsed_as_path(result.addresses())
                )
            # Forward traceroute + assumed symmetry: reverse the
            # forward path and pretend it is the reverse route.
            forward = paris_traceroute(
                scenario.background_prober, source, dst
            )
            if forward.reached:
                as_path = scenario.ip2as.collapsed_as_path(
                    [h for h in forward.hops if h is not None]
                )
                forward_paths.append(list(reversed(as_path)))

        # RIPE-Atlas technique: direct traceroutes from probe hosts.
        for probe in probe_pool:
            trace = paris_traceroute(
                scenario.background_prober, probe, source
            )
            if trace.reached:
                atlas_paths.append(
                    scenario.ip2as.collapsed_as_path(
                        [h for h in trace.hops if h is not None]
                    )
                )

    scores = {
        "revtr2.0": score_as_graph("revtr2.0", revtr_paths, truth),
        "ripe-atlas": score_as_graph("ripe-atlas", atlas_paths, truth),
        "forward+symmetric": score_as_graph(
            "forward+symmetric", forward_paths, truth
        ),
    }
    return Table3Result(scores=scores, total_ases=total_ases)


def format_report(result: Table3Result) -> str:
    lines = [
        "Table 3 — reverse AS graph correctness / completeness",
        f"{'technique':22s}{'correct':>9}{'complete':>10}"
        f"{'verified':>10}{'paper-corr':>12}{'paper-compl':>12}",
    ]
    for name, correctness, completeness, verified in result.rows():
        paper_corr, paper_compl = PAPER[name]
        lines.append(
            f"{name:22s}{correctness:9.2f}{completeness:10.2f}"
            f"{verified:10.2f}{paper_corr:12.2f}{paper_compl:12.2f}"
        )
    return "\n".join(lines)
