"""Table 6 and Fig. 11: record-route responsiveness and reachability.

Replicates the Appendix F surveys: one responsive destination per BGP
prefix, probed with a plain ping and an RR ping from every vantage
point, in two epochs — the sparse pre-flattening 2016 Internet and the
2020 one — plus the "2020 with 2016 VPs" control that isolates the
topology change from the vantage-point expansion.

Paper headlines: ping-responsive 77%/73%, RR-responsive 58%/57%,
reachable within 8 hops 36% of all probed (62-63% of RR-responsive in
both years); within 4 hops of the closest VP: 16% (2016) → 39% (2020).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import fraction_leq
from repro.experiments.common import Scenario
from repro.net.addr import Address
from repro.probing.prober import Prober
from repro.probing.vantage import VantagePointPool
from repro.sim.network import Internet
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_internet

#: Paper reference values per epoch.
PAPER = {
    "2016": {
        "ping": 0.77,
        "rr": 0.58,
        "reachable8": 0.36,
        "within4_of_rr": 0.16,
    },
    "2020": {
        "ping": 0.73,
        "rr": 0.57,
        "reachable8": 0.36,
        "within4_of_rr": 0.39,
    },
}


@dataclass
class EpochSurvey:
    """One epoch's survey counts (Table 6 column)."""

    label: str
    probed: int = 0
    ping_responsive: int = 0
    rr_responsive: int = 0
    reachable8: int = 0
    #: closest-VP RR distances of RR-responsive destinations (Fig 11)
    distances: List[int] = field(default_factory=list)

    def fractions(self) -> Dict[str, float]:
        total = max(1, self.probed)
        rr = max(1, self.rr_responsive)
        return {
            "ping": self.ping_responsive / total,
            "rr": self.rr_responsive / total,
            "reachable8": self.reachable8 / total,
            "within4_of_rr": sum(
                1 for d in self.distances if d <= 4
            )
            / rr,
            "within8_of_rr": sum(
                1 for d in self.distances if d <= 8
            )
            / rr,
        }

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable view (``repro survey --json``)."""
        return {
            "label": self.label,
            "probed": self.probed,
            "ping_responsive": self.ping_responsive,
            "rr_responsive": self.rr_responsive,
            "reachable8": self.reachable8,
            "fractions": self.fractions(),
            "distance_cdf": [
                list(point) for point in self.distance_cdf()
            ],
        }

    def distance_cdf(self) -> List[Tuple[int, float]]:
        """Fig 11 series: (hops, fraction of RR-responsive <= hops)."""
        rr = max(1, self.rr_responsive)
        return [
            (hops, sum(1 for d in self.distances if d <= hops) / rr)
            for hops in range(1, 10)
        ]


@dataclass
class RRResponsivenessResult:
    surveys: Dict[str, EpochSurvey]

    def as_dict(self) -> Dict[str, object]:
        return {
            "surveys": {
                label: survey.as_dict()
                for label, survey in self.surveys.items()
            },
            "paper_reference": PAPER,
        }


def _survey(
    internet: Internet, vps: List[Address], label: str
) -> EpochSurvey:
    prober = Prober(internet)
    survey = EpochSurvey(label=label)
    for info in internet.host_prefixes():
        hosts = sorted(info.hosts)
        if not hosts:
            continue
        dst = hosts[0]
        survey.probed += 1
        if prober.ping(vps[0], dst) is not None:
            survey.ping_responsive += 1
        best: Optional[int] = None
        responded = False
        for vp in vps:
            result = prober.rr_ping(vp, dst, advance_clock=False)
            if result.responded:
                responded = True
                distance = result.distance()
                if distance is not None and (
                    best is None or distance < best
                ):
                    best = distance
        if responded:
            survey.rr_responsive += 1
            if best is not None:
                survey.distances.append(best)
                if best <= 8:
                    survey.reachable8 += 1
    return survey


def run(seed: int = 0) -> RRResponsivenessResult:
    """Run the Table 6 / Fig 11 surveys over both epochs."""
    internet_2020 = build_internet(TopologyConfig.evaluation(seed))
    internet_2016 = build_internet(TopologyConfig.epoch_2016(seed))
    vps_2020 = list(internet_2020.mlab_hosts)
    vps_2016 = list(internet_2016.mlab_hosts)
    #: the "Nov 2020 with 2016 VPs" control: 2020 topology, old fleet
    vps_2020_restricted = vps_2020[: len(vps_2016)]

    surveys = {
        "2016": _survey(internet_2016, vps_2016, "Sept 2016, all VPs"),
        "2020": _survey(internet_2020, vps_2020, "Nov 2020, all VPs"),
        "2020-with-2016-vps": _survey(
            internet_2020, vps_2020_restricted, "Nov 2020, 2016 VPs"
        ),
    }
    return RRResponsivenessResult(surveys=surveys)


def format_table6(result: RRResponsivenessResult) -> str:
    lines = [
        "Table 6 — RR responsiveness and reachability per epoch",
        f"{'metric':22s}{'2016':>8}{'2020':>8}"
        f"{'paper16':>9}{'paper20':>9}",
    ]
    f16 = result.surveys["2016"].fractions()
    f20 = result.surveys["2020"].fractions()
    for metric in ("ping", "rr", "reachable8"):
        lines.append(
            f"{metric:22s}{f16[metric]:8.2f}{f20[metric]:8.2f}"
            f"{PAPER['2016'][metric]:9.2f}{PAPER['2020'][metric]:9.2f}"
        )
    return "\n".join(lines)


def format_fig11(result: RRResponsivenessResult) -> str:
    lines = [
        "Fig 11 — RR hops from the closest VP (CDF over RR-responsive)",
        f"{'hops':>5}"
        + "".join(f"{label:>14}" for label in result.surveys),
    ]
    cdfs = {
        label: dict(survey.distance_cdf())
        for label, survey in result.surveys.items()
    }
    for hops in range(1, 10):
        lines.append(
            f"{hops:5d}"
            + "".join(
                f"{cdfs[label].get(hops, 0.0):14.2f}"
                for label in result.surveys
            )
        )
    f16 = result.surveys["2016"].fractions()
    f20 = result.surveys["2020"].fractions()
    lines.append(
        f"within 4 of RR-responsive: 2016 {f16['within4_of_rr']:.0%} "
        f"(paper 16%), 2020 {f20['within4_of_rr']:.0%} (paper 39%)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Insight 1.3: what spoofing buys (Appendix F)
# ----------------------------------------------------------------------

#: Paper: reverse hops measurable for 32% of <source, destination>
#: pairs without spoofing, 63% with spoofing — roughly 2x.
PAPER_DIRECT_COVERAGE = 0.32
PAPER_SPOOFED_COVERAGE = 0.63


@dataclass
class SpoofingGainResult:
    pairs: int = 0
    direct_covered: int = 0
    spoofed_covered: int = 0

    def direct_fraction(self) -> float:
        return self.direct_covered / max(1, self.pairs)

    def spoofed_fraction(self) -> float:
        return self.spoofed_covered / max(1, self.pairs)

    def gain(self) -> float:
        if self.direct_covered == 0:
            return float("inf") if self.spoofed_covered else 1.0
        return self.spoofed_covered / self.direct_covered


def measure_spoofing_gain(
    internet: Internet,
    max_pairs: int = 300,
    seed: int = 0,
) -> SpoofingGainResult:
    """Reverse-hop coverage with and without spoofing (Appendix F).

    For each (source, RR-responsive destination) pair: does a direct
    RR ping from the source reveal reverse hops, and does a spoofed RR
    ping from the best-positioned vantage point?
    """
    import random as _random

    rng = _random.Random(seed ^ 0x5F00F)
    prober = Prober(internet)
    vps = list(internet.mlab_hosts)
    hosts = sorted(
        h.addr
        for h in internet.hosts.values()
        if h.responds_to_options and not h.is_vantage_point
    )
    rng.shuffle(hosts)
    result = SpoofingGainResult()
    for dst in hosts:
        if result.pairs >= max_pairs:
            break
        source = rng.choice(vps)
        result.pairs += 1
        direct = prober.rr_ping(source, dst, advance_clock=False)
        if direct.responded and direct.reverse_hops():
            result.direct_covered += 1
        for vp in vps:
            if vp == source:
                continue
            spoofed = prober.rr_ping(
                vp, dst, spoof_as=source, advance_clock=False
            )
            if spoofed.responded and spoofed.reverse_hops():
                result.spoofed_covered += 1
                break
    return result


def format_spoofing_gain(result: SpoofingGainResult) -> str:
    return "\n".join(
        [
            "Insight 1.3 — coverage with and without spoofing "
            "(Appendix F)",
            f"pairs tested: {result.pairs}",
            f"direct RR from the source: "
            f"{result.direct_fraction():.0%} "
            f"(paper {PAPER_DIRECT_COVERAGE:.0%})",
            f"spoofed RR from the best VP: "
            f"{result.spoofed_fraction():.0%} "
            f"(paper {PAPER_SPOOFED_COVERAGE:.0%})",
            f"gain: {result.gain():.1f}x (paper ~2.0x)",
        ]
    )
